"""Event-driven execution of a strategy over a workload.

A workload is a sequence of *events*: arriving :class:`StreamTuple`\\ s
interleaved with :class:`TransitionEvent`\\ s (forced plan transitions, as
in every experiment of Section 6).  ``run_events`` drives any migration
strategy through such a sequence.

``StrategyExecutor`` is the minimal interface every strategy implements;
strategies live in :mod:`repro.migration` and :mod:`repro.eddy`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Protocol, Sequence, Union

from repro.obs.tracer import Tracer

from repro.plans.spec import PlanSpec
from repro.streams.tuples import StreamTuple


class TransitionEvent:
    """A forced plan transition to ``new_spec`` (or a left-deep order)."""

    __slots__ = ("new_spec",)

    def __init__(self, new_spec: PlanSpec):
        self.new_spec = new_spec

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TransitionEvent({self.new_spec!r})"


Event = Union[StreamTuple, TransitionEvent]


class StrategyExecutor(Protocol):
    """What every migration strategy / execution framework exposes."""

    name: str

    def process(self, tup: StreamTuple) -> None:
        """Process one arriving tuple through the current plan(s)."""
        ...

    def transition(self, new_spec: PlanSpec) -> None:
        """Switch to ``new_spec`` using the strategy's migration policy."""
        ...

    @property
    def outputs(self) -> List[Any]:
        """Append-only log of emitted results."""
        ...


def run_events(
    strategy: StrategyExecutor,
    events: Iterable[Event],
    tracer: Optional[Tracer] = None,
) -> StrategyExecutor:
    """Drive ``strategy`` through ``events``; returns the strategy.

    Pass a :class:`~repro.obs.tracer.RecordingTracer` as ``tracer`` to
    attach it to the strategy's metrics before the first event — every
    span, phase-attributed counter and output latency of the run is then
    captured (see :mod:`repro.obs`).

    Consecutive arrivals are handed to the strategy's ``process_batch``
    (when it has one) as one run, flushed before every transition — so a
    batch never spans a transition and strategies may hoist per-plan
    lookups out of their batch loops.  Strategies without ``process_batch``
    are driven per tuple, exactly as before.
    """
    if tracer is not None:
        tracer.attach(strategy)
    process_batch = getattr(strategy, "process_batch", None)
    batch: List[StreamTuple] = []
    for event in events:
        if isinstance(event, TransitionEvent):
            if batch:
                if process_batch is not None:
                    process_batch(batch)
                else:
                    for tup in batch:
                        strategy.process(tup)
                batch = []
            strategy.transition(event.new_spec)
        else:
            batch.append(event)
    if batch:
        if process_batch is not None:
            process_batch(batch)
        else:
            for tup in batch:
                strategy.process(tup)
    return strategy


def interleave_transitions(
    tuples: Sequence[StreamTuple],
    transitions: Sequence[tuple],
) -> List[Event]:
    """Insert transitions into a tuple sequence.

    ``transitions`` is a list of ``(position, spec)`` pairs: the transition
    fires just before the tuple at index ``position``.  Positions may repeat
    (overlapped transitions) and may equal ``len(tuples)`` (fire at the end).
    """
    by_pos: dict = {}
    for pos, spec in transitions:
        if not 0 <= pos <= len(tuples):
            raise ValueError(f"transition position {pos} out of range")
        by_pos.setdefault(pos, []).append(spec)
    events: List[Event] = []
    for i, tup in enumerate(tuples):
        for spec in by_pos.get(i, ()):
            events.append(TransitionEvent(spec))
        events.append(tup)
    for spec in by_pos.get(len(tuples), ()):
        events.append(TransitionEvent(spec))
    return events
