"""Deterministic cost model and virtual clock.

The paper's latency experiment (Figure 10) reports *seconds* on a specific
Java/Windows machine.  To reproduce the shape of those results in a
machine-independent way, every primitive operation is assigned a fixed cost
in abstract time units; a :class:`VirtualClock` accumulates them.  Output
latency is then "virtual time from transition trigger to first output",
which depends only on how much work a strategy performs — exactly the
quantity the paper's figure is about.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.metrics import Counter

#: Default per-operation costs, in abstract time units.  Only the ratios
#: matter.  They model a main-memory DSMS: a probe walks a bucket and
#: materializes matches (1.0); hash-table maintenance (insert/remove) is a
#: cheap slot update (0.3); handing a tuple to the next pipeline operator is
#: a queue push (0.2), while an eddy visit additionally takes a routing
#: decision and updates the tuple's progress bit-vector (1.0 — the per-tuple
#: overhead Section 3.1 attributes to CACQ); a nested-loops step is a bare
#: predicate evaluation (0.25) but runs once per scanned entry; duplicate
#: elimination and purge polling are hash/memo lookups (0.5 / 0.25).
DEFAULT_COSTS: Dict[str, float] = {
    Counter.HASH_PROBE: 1.0,
    Counter.HASH_INSERT: 0.3,
    Counter.STATE_REMOVE: 0.3,
    Counter.NL_COMPARE: 0.25,
    Counter.TUPLE_EMIT: 0.2,
    Counter.OUTPUT: 0.5,
    Counter.EDDY_VISIT: 1.0,
    Counter.DEDUP_CHECK: 0.5,
    Counter.STATE_COPY: 0.5,
    Counter.COMPLETION_PROBE: 1.0,
    Counter.PURGE_CHECK: 0.25,
    Counter.QUEUE_OP: 0.1,
    Counter.PROMOTE: 1.0,
    Counter.DEMOTE: 0.5,
}


class CostModel:
    """Maps operation names to abstract time units.

    Unknown operations cost ``default`` units (1.0 unless overridden), so new
    counters degrade gracefully instead of silently costing zero.
    """

    __slots__ = ("_costs", "default")

    def __init__(self, overrides: Optional[Dict[str, float]] = None, default: float = 1.0):
        self._costs = dict(DEFAULT_COSTS)
        if overrides:
            self._costs.update(overrides)
        self.default = default

    def cost_of(self, op: str) -> float:
        return self._costs.get(op, self.default)

    def table(self) -> Dict[str, float]:
        """Copy of the full cost table (hot callers cache this dict)."""
        return dict(self._costs)

    def time_for(self, counts: Dict[str, int]) -> float:
        """Total virtual time for a counter snapshot."""
        return sum(self.cost_of(op) * n for op, n in counts.items())


class VirtualClock:
    """Accumulates virtual time as operations are counted.

    Attach to a :class:`~repro.engine.metrics.Metrics`; every counted
    operation advances ``now`` by its cost.

    ``costs``/``default`` are a cached copy of the cost model's table so the
    per-count hot path (:meth:`~repro.engine.metrics.Metrics.count`) is one
    dict lookup with no method dispatch.  The cost model is therefore fixed
    at construction: build a new clock rather than mutating ``cost_model``
    afterwards.
    """

    __slots__ = ("cost_model", "costs", "default", "now")

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model or CostModel()
        self.costs = self.cost_model.table()
        self.default = self.cost_model.default
        self.now = 0.0

    def tick(self, op: str, n: int = 1) -> None:
        self.now += self.costs.get(op, self.default) * n

    def reset(self) -> None:
        self.now = 0.0
