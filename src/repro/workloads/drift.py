"""Workloads with drifting value distributions.

The optimize-at-runtime motivation (Section 1): a join order chosen from
initial statistics becomes suboptimal because the streams' *value
distributions* drift.  :class:`SelectivityDriftWorkload` formalizes the
pattern used by the examples: the workload runs in phases; in each phase
one designated stream draws its keys from a much larger domain, making
probes against it miss (i.e. making its join the most selective one).  A
well-behaved adaptive system reorders the plan once per phase change.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.streams.tuples import StreamTuple


class SelectivityDriftWorkload:
    """Phase-based key-distribution drift across streams.

    Parameters
    ----------
    streams:
        Stream names; tuples are dealt round-robin.
    phases:
        ``[(n_tuples, selective_stream), ...]`` — in each phase the named
        stream scatters its keys over ``base_domain * scatter`` values
        while the others use ``base_domain``.
    base_domain:
        The hot key domain shared by non-selective streams.
    scatter:
        Domain inflation factor for the selective stream.
    """

    def __init__(
        self,
        streams: Sequence[str],
        phases: Sequence[Tuple[int, str]],
        base_domain: int = 50,
        scatter: int = 20,
        seed: int = 0,
    ):
        if not streams:
            raise ValueError("need at least one stream")
        if not phases:
            raise ValueError("need at least one phase")
        for _, selective in phases:
            if selective not in streams:
                raise ValueError(f"unknown selective stream {selective!r}")
        if base_domain <= 0 or scatter <= 1:
            raise ValueError("base_domain must be positive and scatter > 1")
        self.streams = tuple(streams)
        self.phases = list(phases)
        self.base_domain = base_domain
        self.scatter = scatter
        self.seed = seed

    def materialize(self) -> List[StreamTuple]:
        rng = random.Random(self.seed)
        out: List[StreamTuple] = []
        seq = 0
        for length, selective in self.phases:
            for _ in range(length):
                stream = self.streams[seq % len(self.streams)]
                if stream == selective:
                    key = rng.randrange(self.base_domain * self.scatter)
                else:
                    key = rng.randrange(self.base_domain)
                out.append(StreamTuple(stream, seq, key))
                seq += 1
        return out

    def phase_boundaries(self) -> List[int]:
        """Global tuple indices at which each phase begins (first is 0)."""
        bounds = [0]
        for length, _ in self.phases[:-1]:
            bounds.append(bounds[-1] + length)
        return bounds

    def expected_selective_stream(self, index: int) -> str:
        """Which stream is the selective one at tuple ``index``."""
        position = 0
        for length, selective in self.phases:
            position += length
            if index < position:
                return selective
        raise IndexError(f"tuple index {index} beyond the workload")
