"""Scenario builders mirroring the paper's experimental setup (Section 6).

The paper generates uniform data dealt uniformly across the streams of a
chain query with a given number of joins, forces plan transitions at fixed
points, and compares strategies on the same tuple sequence.  These helpers
produce exactly those event sequences, scaled by the caller (see
EXPERIMENTS.md for the scale mapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.engine.executor import Event, interleave_transitions
from repro.plans.transitions import best_case_transition, worst_case_transition
from repro.streams.generators import UniformWorkload
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


@dataclass(frozen=True)
class ChainScenario:
    """A chain query workload: schema, initial order, and the tuple stream."""

    schema: Schema
    order: Tuple[str, ...]
    tuples: Tuple[StreamTuple, ...]

    @property
    def n_joins(self) -> int:
        return len(self.order) - 1


def chain_scenario(
    n_joins: int,
    n_tuples: int,
    window: int,
    key_domain: int = 0,
    seed: int = 0,
) -> ChainScenario:
    """Uniform chain workload over ``n_joins + 1`` streams.

    ``key_domain`` defaults to the window size, giving roughly one match
    per probe (the scaling note in :class:`UniformWorkload`).
    """
    if n_joins < 2:
        raise ValueError("chain scenarios need at least two joins")
    names = tuple(f"S{i}" for i in range(n_joins + 1))
    domain = key_domain or window
    schema = Schema.uniform(names, window)
    tuples = tuple(UniformWorkload(names, n_tuples, domain, seed=seed))
    return ChainScenario(schema, names, tuples)


def swap_for_case(order: Sequence[str], case: str) -> Tuple[str, ...]:
    """The transition target for the paper's best/worst cases.

    * ``"best"`` — one incomplete state just below the root (Figures 5, 7, 12);
    * ``"worst"`` — every intermediate state incomplete (Figures 8, 11).
    """
    if case == "best":
        return best_case_transition(order)
    if case == "worst":
        return worst_case_transition(order)
    raise ValueError(f"unknown case {case!r} (expected 'best' or 'worst')")


def migration_stage_events(
    scenario: ChainScenario, warmup: int, case: str = "best"
) -> List[Event]:
    """Warm up, force one transition, then stream the remaining tuples.

    Mirrors Section 6.1: "we force a plan transition while executing the
    queries after processing [the warm-up] tuples" and keep processing so
    the migration stage can be measured.
    """
    if not 0 < warmup < len(scenario.tuples):
        raise ValueError("warmup must fall inside the tuple stream")
    new_order = swap_for_case(scenario.order, case)
    return interleave_transitions(list(scenario.tuples), [(warmup, new_order)])


def frequency_events(
    scenario: ChainScenario, period: int, case: str = "best"
) -> List[Event]:
    """Force a transition every ``period`` tuples (Section 6.4).

    Transitions alternate between the swapped order and the original one,
    so every transition creates fresh incomplete states of the requested
    case; with small periods the transitions overlap (Section 4.5).
    """
    if period <= 0:
        raise ValueError("period must be positive")
    swapped = swap_for_case(scenario.order, case)
    transitions = []
    flip = True
    pos = period
    while pos < len(scenario.tuples):
        transitions.append((pos, swapped if flip else scenario.order))
        flip = not flip
        pos += period
    return interleave_transitions(list(scenario.tuples), transitions)
