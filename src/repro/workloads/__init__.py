"""Experiment-grade workload scenarios for the Section 6 reproduction."""

from repro.workloads.drift import SelectivityDriftWorkload
from repro.workloads.scenarios import (
    ChainScenario,
    chain_scenario,
    migration_stage_events,
    frequency_events,
    swap_for_case,
)

__all__ = [
    "ChainScenario",
    "chain_scenario",
    "migration_stage_events",
    "frequency_events",
    "swap_for_case",
    "SelectivityDriftWorkload",
]
