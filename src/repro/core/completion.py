"""State completion (Section 4, Procedures 2 and 3).

Completion rebuilds the entries of incomplete states for one join-attribute
value, bottom-up from the highest complete states in the subtree:

* :func:`complete_value_recursive` — Procedure 2, for arbitrary (bushy)
  trees: recursively ensure both children are complete for the value, then
  build this node's entries for it.

* :func:`complete_value_left_deep` — Procedure 3, the left-deep
  specialization: in a left-deep plan every right child is a scan (always
  complete), so the recursion degenerates into a walk down the left spine
  to the highest complete state, then an upward pass — no recursion needed.

Both procedures insert entries into states **without emitting** them:
completion rebuilds state, it does not produce results (the probing tuple
joins against the completed state immediately afterwards — Procedure 1).

A deliberate deviation from the paper's Procedure 1 pseudo-code is applied
by the controller calling these routines: completion is triggered whenever
a fresh tuple probes an incomplete state whose value is still pending,
*even if the probe would find (partial) matches*.  The paper's pseudo-code
checks ``contains`` first, which misses results when an incomplete state
holds partial entries for the value (inserted by post-transition arrivals
within its subtree) while pre-transition combinations are still missing.
The correctness proof in the paper's appendix implicitly assumes per-value
all-or-nothing state contents; triggering on pending-ness restores that
invariant.  See DESIGN.md ("deviations").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

from repro.operators.base import BinaryOperator, Operator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.controller import JISCController


def complete_value_recursive(
    controller: "JISCController", op: Operator, key: Any
) -> None:
    """Procedure 2: ensure ``op``'s state is complete for ``key`` (bushy)."""
    if not isinstance(op, BinaryOperator):
        return  # scans and unary operators are always complete
    if not controller.needs_completion(op, key):
        return
    complete_value_recursive(controller, op.left, key)
    complete_value_recursive(controller, op.right, key)
    op.build_state_for_key(key, exclude_part=controller.current_part)
    controller.settle(op, key)


def complete_value_left_deep(
    controller: "JISCController", op: Operator, key: Any
) -> None:
    """Procedure 3: iterative completion along the left spine.

    ``op`` is the (incomplete) operator whose state needs the entries for
    ``key``.  Walk down left children collecting the incomplete stretch,
    then rebuild upwards starting just above the highest complete state.
    """
    pending_nodes: List[BinaryOperator] = []
    cursor = op
    while isinstance(cursor, BinaryOperator) and controller.needs_completion(cursor, key):
        pending_nodes.append(cursor)
        cursor = cursor.left
    # ``cursor`` is now the highest operator with a complete (or settled-
    # for-key) state in the left branch; scans terminate the walk at the
    # latest, as leaf states are always complete (Section 4).
    for node in reversed(pending_nodes):
        node.build_state_for_key(key, exclude_part=controller.current_part)
        controller.settle(node, key)
