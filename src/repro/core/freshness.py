"""Fresh vs. attempted tuples (Definition 2, Section 4.4).

A received tuple is *fresh* if no other tuple with its join-attribute value
has been received **on its stream** since the most recent plan transition;
otherwise it is *attempted*.  Fresh tuples trigger state completion;
attempted tuples are guaranteed to find completed entries (the fresh tuple
with the same value got there first), so they skip the completion check —
this is what bounds completion work to at most once per value.

The registry stores, per stream, the arrival sequence of the last tuple
seen for each join-attribute value — exactly the "hash table of that
stream" lookup the paper describes (O(1) CPU time) — plus the sequence
number of the most recent plan transition.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.streams.tuples import StreamTuple


class FreshnessRegistry:
    """Per-stream last-arrival tracking against the latest transition."""

    def __init__(self):
        # stream -> {join value -> seq of last arrival with that value}
        self._last_seen: Dict[str, Dict[Any, int]] = {}
        self.last_transition_seq: int = -1

    def note_transition(self, seq: int) -> None:
        """Record that a plan transition took effect just before ``seq``.

        Tuples with arrival sequence >= ``seq`` count as received after the
        transition.
        """
        self.last_transition_seq = seq

    def check(self, tup: StreamTuple) -> bool:
        """Is ``tup`` fresh? (No registry update.)

        Fresh means: no earlier tuple with the same value arrived on the
        same stream at or after the last transition.  Definition 2 counts
        "other" tuples only, so an arrival must be *checked* before it is
        *recorded* — in particular, the window eviction it causes is
        evaluated against the registry without the arrival itself (see
        tests/test_expiry_optimization_soundness.py for why this ordering
        is load-bearing).
        """
        prev = self._last_seen.get(tup.stream, {}).get(tup.key)
        return prev is None or prev < self.last_transition_seq

    def record(self, tup: StreamTuple) -> None:
        """Register ``tup``'s arrival (after its processing cascade ended)."""
        self._last_seen.setdefault(tup.stream, {})[tup.key] = tup.seq

    def observe(self, tup: StreamTuple) -> bool:
        """Check-and-record in one step (for callers without a cascade)."""
        fresh = self.check(tup)
        self.record(tup)
        return fresh

    def is_fresh_value(self, stream: str, key: Any) -> bool:
        """Would a hypothetical tuple (``stream``, ``key``) be fresh now?

        Used by the window-slide optimization of Section 4.4: an *expiring*
        tuple is attempted iff some tuple with its value arrived on its
        stream after the last transition, in which case removal may stop at
        complete-looking states.
        """
        prev = self._last_seen.get(stream, {}).get(key)
        return prev is None or prev < self.last_transition_seq

    def forget_stream(self, stream: str) -> None:
        """Drop tracking for one stream (used when a query retires it)."""
        self._last_seen.pop(stream, None)
