"""JISC plan-transition orchestration (Sections 4.1, 4.5).

``perform_jisc_transition`` switches a running query from its current plan
to ``new_spec``:

1. **Safe transition** (Section 4.1): the caller guarantees all input
   queues are drained before calling (the synchronous executor is always
   drained between arrivals; the queued executor exposes an explicit
   ``drain()`` — see ``engine.queued``).  Every tuple received before the
   transition has then been fully processed through the old plan, which is
   what makes JISC duplicate-free (Theorem 3).

2. **State adoption** (Definition 1): a new-plan state whose identity
   (operator kind + stream membership) exists in the old plan adopts the
   old state object — an O(1) pointer move, the reason JISC's transition
   itself costs nothing.  Old states with no new-plan counterpart are
   discarded.  Scans (windows) are reused as-is.

3. **Overlapped transitions** (Section 4.5): an adopted state that was
   still incomplete in the old plan *stays* incomplete; its pending set is
   re-derived from the current reference child and intersected with the
   previous pending set, and its original transition timestamp is kept.

4. **Counter initialization** (Section 4.3): brand-new (incomplete) states
   get their pending sets per Cases 1-3, bottom-up, so each node sees its
   children's final statuses.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.controller import JISCController, JISCStateInfo
from repro.engine.metrics import Metrics
from repro.operators.state import HashState
from repro.plans.build import Identity, OpFactory, PhysicalPlan, build_plan
from repro.plans.spec import PlanSpec, validate_spec
from repro.streams.schema import Schema


def perform_jisc_transition(
    old_plan: PhysicalPlan,
    new_spec: PlanSpec,
    schema: Schema,
    metrics: Metrics,
    controller: JISCController,
    transition_seq: int,
    op_factory: Optional[OpFactory] = None,
) -> PhysicalPlan:
    """Migrate ``old_plan`` to ``new_spec`` under JISC; returns the new plan."""
    new_names = validate_spec(new_spec)
    old_names = frozenset(old_plan.scans)
    if new_names != old_names:
        raise ValueError(
            f"transition must preserve the stream set: {sorted(old_names)} "
            f"-> {sorted(new_names)}"
        )

    adopted: Set[Identity] = set()

    def provider(identity: Identity) -> Optional[HashState]:
        old_op = old_plan.by_identity.get(identity)
        if old_op is None:
            return None
        adopted.add(identity)
        return old_op.state

    new_plan = build_plan(
        new_spec,
        schema,
        metrics,
        op_factory=op_factory,
        scans=old_plan.scans,
        state_provider=provider,
        sink=old_plan.sink,
    )

    # Carry the controller bookkeeping from old operators to the new ones
    # that adopted their states (identity-preserving adoption).
    old_info = {}
    for op in old_plan.internal:
        info = controller.info.pop(op, None)
        if info is not None:
            old_info[op.identity] = info
    controller.incomplete_ops.clear()

    # Internal nodes are listed children-first (post-order), so counters can
    # be initialized bottom-up.
    for op in new_plan.internal:
        if op.identity in adopted:
            if op.state.status.complete:
                continue
            # Section 4.5: adopted but still incomplete from an earlier
            # transition.  Keep settled values and the original transition
            # timestamp; re-derive pending from the current children and
            # never widen it beyond what was already pending.
            prev = old_info.get(op.identity) or JISCStateInfo(transition_seq)
            controller.info[op] = prev
            prior_pending = (
                set(op.state.status.pending)
                if op.state.status.pending is not None
                else None
            )
            controller.init_pending(op)
            status = op.state.status
            if (
                not status.complete
                and status.pending is not None
                and prior_pending is not None
            ):
                status.pending &= prior_pending
                if not status.pending:
                    controller._mark_complete(op)
        else:
            # Brand-new state: incomplete by Definition 1.
            info = JISCStateInfo(transition_seq)
            controller.info[op] = info
            op.state.status.complete = False
            controller.init_pending(op)

    controller.incomplete_ops = {
        op for op in new_plan.internal if not op.state.status.complete
    }
    controller.freshness.note_transition(transition_seq)
    tracer = metrics.tracer
    if tracer.enabled:
        tracer.note(
            "jisc_adoption",
            seq=transition_seq,
            adopted=len(adopted),
            new_states=len(new_plan.internal) - len(adopted),
            incomplete=len(controller.incomplete_ops),
        )
    controller.attach(new_plan)
    # Re-derive incomplete set after attach (attach recomputes it from the
    # plan, which is identical, but keeps one source of truth).
    return new_plan
