"""JISC runtime controller.

The controller owns everything Section 4 adds on top of a plain pipelined
plan:

* the freshness registry (Definition 2, Section 4.4);
* per-state completion bookkeeping: pending-value sets (the Section 4.3
  counters — ``counter == len(pending)``), the settled-value memo that
  makes completion happen at most once per (state, value), the reference
  child used for counter initialization (Cases 1-3), and the sequence
  number of the transition that made the state incomplete;
* the completion hook installed on every join operator (Procedure 1);
* the settle / retire / parent-notification cascades that detect when an
  incomplete state has become complete (Section 4.3);
* the window-expiry hooks: freshness-aware removal propagation
  (Sections 4.2 / 4.4) and pending-value retirement when the last
  pre-transition tuple for a value leaves the reference child's state.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from repro.core.completion import complete_value_left_deep, complete_value_recursive
from repro.core.freshness import FreshnessRegistry
from repro.engine.metrics import Metrics
from repro.obs.tracer import PHASE_COMPLETING
from repro.operators.base import BinaryOperator, Operator
from repro.plans.build import PhysicalPlan
from repro.streams.tuples import AnyTuple, StreamTuple


class JISCStateInfo:
    """Per-operator completion bookkeeping (see module docstring)."""

    __slots__ = ("settled", "transition_seq", "reference_child")

    def __init__(self, transition_seq: int = 0):
        self.settled: Set[Any] = set()
        self.transition_seq = transition_seq
        self.reference_child: Optional[Operator] = None


class JISCController:
    """Coordinates state completion across one query's physical plan."""

    def __init__(
        self,
        metrics: Metrics,
        force_recursive: bool = False,
        naive_recheck: bool = False,
        expiry_optimization: bool = True,
    ):
        self.metrics = metrics
        self.freshness = FreshnessRegistry()
        self.info: Dict[Operator, JISCStateInfo] = {}
        self.incomplete_ops: Set[BinaryOperator] = set()
        self.plan: Optional[PhysicalPlan] = None
        self.current_fresh = True
        self.current_part: Optional[Tuple[str, int]] = None
        # Procedure 3 (left-deep walk) is used automatically for left-deep
        # plans unless forced off (useful for the Procedure-2/3 equivalence
        # tests).
        self.force_recursive = force_recursive
        # Section 4.4 ablation: with ``naive_recheck`` the fresh/attempted
        # classification and the settled-value memo are ignored, so every
        # probe of an incomplete state redoes the (idempotent) completion —
        # the "repeated computations" the paper's Definition 2 machinery
        # exists to avoid.  Output-equivalent, strictly more work.
        self.naive_recheck = naive_recheck
        # Section 4.4's window-slide optimization: attempted expiring tuples
        # stop propagating at the first state without a match.  Sound only
        # together with own-path completion on arrivals (see
        # JoinOperator.process); with the flag off, expiring tuples always
        # propagate through incomplete states (plain Section 4.2 rule) and
        # arrivals skip own-path completion.
        self.expiry_optimization = expiry_optimization
        self._use_left_deep = False

    # -- plan wiring -----------------------------------------------------------

    def attach(self, plan: PhysicalPlan) -> None:
        """Install hooks on ``plan``'s operators and adopt it as current."""
        self.plan = plan
        self._use_left_deep = plan.is_left_deep() and not self.force_recursive
        for op in plan.internal:
            if hasattr(op, "completion_hook"):
                op.completion_hook = self._completion_hook
        for scan in plan.scans.values():
            scan.fresh_fn = (
                self._expired_tuple_is_fresh if self.expiry_optimization else None
            )
            scan.expire_hook = self._on_expiry
        self.incomplete_ops = {
            op for op in plan.internal if not op.state.status.complete
        }

    # -- arrival path ----------------------------------------------------------

    def on_arrival(self, tup: StreamTuple) -> None:
        """Classify the arriving tuple as fresh/attempted (Definition 2).

        Must be called before feeding the tuple into the plan; the flag
        applies to the tuple's whole processing cascade (every composite
        produced while processing it carries the same join value).  Call
        :meth:`after_arrival` once the cascade has finished — the arrival
        is only *recorded* then, so the window eviction it may trigger is
        judged against the registry without the arrival itself.
        """
        self.current_fresh = self.freshness.check(tup)
        # The part of the tuple whose cascade is in flight; completion must
        # not pre-add results containing it (the cascade emits them itself).
        self.current_part = (tup.stream, tup.seq)

    def after_arrival(self, tup: StreamTuple) -> None:
        """Record the arrival once its processing cascade completed."""
        self.freshness.record(tup)

    def _completion_hook(
        self, tup: AnyTuple, join_node: Operator, opposite: Operator
    ) -> None:
        """Procedure 1, lines 5-6: complete on a fresh probe of a pending value.

        Called with ``opposite is join_node`` for own-path completion (the
        Section 4.4 soundness requirement), which is only needed when the
        window-slide optimization is active.
        """
        if opposite is join_node and not self.expiry_optimization:
            return
        if not self.current_fresh and not self.naive_recheck:
            return
        if not self.needs_completion(opposite, tup.key):
            return
        tracer = self.metrics.tracer
        if not tracer.enabled:
            if self._use_left_deep:
                complete_value_left_deep(self, opposite, tup.key)
            else:
                complete_value_recursive(self, opposite, tup.key)
            return
        # Traced path: completion work runs in the "completing" phase and
        # leaves one span per (state, value) — the unit the paper's lazy
        # migration cost is paid in.
        clock = self.metrics.clock
        start = clock.now if clock is not None else 0.0
        prev = tracer.set_phase(PHASE_COMPLETING)
        try:
            if self._use_left_deep:
                complete_value_left_deep(self, opposite, tup.key)
            else:
                complete_value_recursive(self, opposite, tup.key)
        finally:
            tracer.completion(
                "".join(sorted(opposite.membership)),
                tup.key,
                cost=(clock.now if clock is not None else 0.0) - start,
            )
            tracer.set_phase(prev)

    # -- completion bookkeeping --------------------------------------------------

    def needs_completion(self, op: Operator, key: Any) -> bool:
        """Does ``op``'s state possibly miss entries for ``key``?"""
        status = op.state.status
        if status.complete:
            return False
        if self.naive_recheck:
            return True
        info = self.info.get(op)
        if info is not None and key in info.settled:
            return False
        if status.pending is not None and key not in status.pending:
            # Never pending: the value was absent from the reference child at
            # transition time, so its entries are maintained incrementally
            # from the start (or it has been retired by window slides).
            return False
        return True

    def settle(self, op: BinaryOperator, key: Any) -> None:
        """Record that ``op``'s entries for ``key`` are now complete."""
        info = self.info.get(op)
        if info is None:
            info = self.info[op] = JISCStateInfo()
        info.settled.add(key)
        status = op.state.status
        if status.pending is not None:
            status.pending.discard(key)
            if not status.pending:
                self._mark_complete(op)

    def _mark_complete(self, op: BinaryOperator) -> None:
        op.state.status.mark_complete()
        self.incomplete_ops.discard(op)
        self.info.pop(op, None)
        self._notify_parent(op)

    def _notify_parent(self, op: Operator) -> None:
        """Section 4.3, Case 3: a child's completion may unlock the parent.

        When a Case-3 parent (both children were incomplete; no counter)
        sees a child complete, its counter can now be initialized (Case 1
        or 2); if nothing is pending the parent completes too, recursively.
        """
        parent = op.parent
        if parent is None or not isinstance(parent, BinaryOperator):
            return
        status = parent.state.status
        if status.complete or status.pending is not None:
            return
        self.init_pending(parent, at_transition=False)

    def init_pending(self, op: BinaryOperator, at_transition: bool = True) -> None:
        """(Re)initialize the completion counter of ``op`` (Cases 1-3).

        For joins:

        * Case 1 — both children complete: pending = distinct values of the
          smaller child's state (minus already-settled values).
        * Case 2 — one child complete: pending = distinct values of the
          complete child's state (minus settled).
        * Case 3 — neither complete: no counter (``pending = None``);
          completion is detected through child notifications.

        For set-difference the counter tracks the *old outer* values: the
        state misses exactly the pre-transition outer tuples, so pending is
        the (complete) outer child's distinct values at transition time.
        When the outer child completes later (``at_transition=False``), no
        pre-transition outer tuples remain in any window, so the state is
        complete outright.
        """
        info = self.info.get(op)
        if info is None:
            info = self.info[op] = JISCStateInfo()
        if op.kind == "setdiff":
            self._init_pending_setdiff(op, info, at_transition)
            return
        left, right = op.left, op.right
        left_ok = left.state.status.complete
        right_ok = right.state.status.complete
        if left_ok and right_ok:
            ref = (
                left
                if left.state.distinct_count() <= right.state.distinct_count()
                else right
            )
        elif left_ok:
            ref = left
        elif right_ok:
            ref = right
        else:
            op.state.status.complete = False
            op.state.status.pending = None
            info.reference_child = None
            return
        info.reference_child = ref
        pending = ref.state.distinct_values() - info.settled
        if pending:
            op.state.status.mark_incomplete(pending)
        else:
            self._mark_complete(op)

    def _init_pending_setdiff(
        self, op: BinaryOperator, info: JISCStateInfo, at_transition: bool
    ) -> None:
        left = op.left
        if not left.state.status.complete:
            op.state.status.complete = False
            op.state.status.pending = None
            info.reference_child = None
            return
        info.reference_child = left
        if not at_transition:
            # The outer child completed through retirement: every
            # pre-transition outer tuple has expired, nothing is missing.
            self._mark_complete(op)
            return
        pending = left.state.distinct_values() - info.settled
        if pending:
            op.state.status.mark_incomplete(pending)
        else:
            self._mark_complete(op)

    # -- window expiry ------------------------------------------------------------

    def _expired_tuple_is_fresh(self, tup: StreamTuple) -> bool:
        """Section 4.4's removal optimization: attempted expiring tuples may
        stop at the first state without a match; fresh ones keep clearing
        through incomplete states (Section 4.2)."""
        return self.freshness.is_fresh_value(tup.stream, tup.key)

    def _on_expiry(self, tup: StreamTuple) -> None:
        """Retire pending values whose pre-transition support expired.

        Called after the removal cascade, so reference-child states already
        reflect the eviction.  When the reference child no longer holds any
        entry for ``tup.key`` that predates the state's transition, no
        missing pre-transition combination can remain, and the value's
        counter contribution is released (otherwise a never-probed value
        would keep the state incomplete forever).
        """
        key = tup.key
        # Sorted by membership so retire/complete decisions happen in a
        # run-independent order (set iteration order varies with hash seed).
        for op in sorted(self.incomplete_ops, key=lambda o: sorted(o.membership)):
            status = op.state.status
            if status.pending is None or key not in status.pending:
                continue
            info = self.info.get(op)
            if info is None:
                continue
            # The expired tuple lives under exactly one child; the check is
            # only valid against a *complete* child state (an incomplete one
            # under-counts old entries, which would retire prematurely).
            side = op.left if tup.stream in op.left.membership else (
                op.right if tup.stream in op.right.membership else None
            )
            if side is None or not side.state.status.complete:
                continue
            threshold = info.transition_seq
            has_old = any(
                entry.max_seq() < threshold
                for entry in side.state.get_view(key)
            )
            if not has_old:
                status.pending.discard(key)
                if not status.pending:
                    self._mark_complete(op)
