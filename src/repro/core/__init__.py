"""JISC — Just-In-Time State Completion (the paper's contribution).

The package implements Section 4 of the paper:

* :mod:`repro.core.freshness` — Definition 2 (fresh vs. attempted tuples);
* :mod:`repro.core.completion` — Procedures 2 and 3 (recursive state
  completion for bushy trees, iterative walk for left-deep trees);
* :mod:`repro.core.controller` — the runtime bookkeeping: completeness
  status per state (Definition 1), completion-detection counters
  (Section 4.3, Cases 1-3), settle/retire/notify cascades, and the
  completion hook plugged into join operators (Procedure 1);
* :mod:`repro.core.transition` — plan-transition orchestration: safe
  transition with buffer clearing (Section 4.1), state adoption/discard,
  overlapped transitions (Section 4.5).
"""

from repro.core.freshness import FreshnessRegistry
from repro.core.controller import JISCController, JISCStateInfo
from repro.core.completion import complete_value_recursive, complete_value_left_deep

__all__ = [
    "FreshnessRegistry",
    "JISCController",
    "JISCStateInfo",
    "complete_value_recursive",
    "complete_value_left_deep",
]
