"""Phase-protocol typestate verifier (the JISC004 upgrade to proofs).

The engine's phase machine (docs/STATIC_ANALYSIS.md carries the diagram)::

                      +-------------> completing -----------+
                      |                 ^   ^               |
    steady ----> migrating              |   |               v
      | ^                               |   +--------- (restores to
      | |---> rebalancing --------------+               previous phase)
      | |                                               every phase span
      | +---> recovering ---> {migrating, rebalancing,  is try/finally
      |                        completing}              bracketed
      +------------------------------------------------ ...

Verification is interprocedural over the :mod:`repro.lint.callgraph`
project:

1. every function that opens a ``set_phase(PHASE_X)`` span *grants* phase
   ``X`` to all of its callees (function granularity: the engine's traced
   and untraced branches of the same function execute the same protocol
   step, so the grant deliberately covers the untraced fast path too);
2. phase contexts propagate to a fixpoint along resolved call edges —
   entry points (functions with no in-project callers) run at ``steady``;
3. :data:`POLICIES` pins protocol functions to their legal phases — a
   reaching context outside the allowed set is a violation, reported with
   a witness call chain;
4. opening a span is itself checked against :data:`LEGAL_TRANSITIONS`
   (e.g. ``recovering`` may only be entered from ``steady``).

The result is a :class:`PhaseProof`: the full context map, every policy
with its observed contexts, and the violation list.  Tests assert over the
proof directly (all six strategies' mutation sites must verify).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.callgraph import Project

ALL_PHASES = frozenset(
    {"steady", "migrating", "completing", "recovering", "rebalancing"}
)

#: phase -> phases it may legally be entered from (self-entry is always
#: allowed: re-opening the active phase is an idempotent no-op, which the
#: nested rebalancing spans of ShardWorker.replay rely on).
LEGAL_TRANSITIONS: Dict[str, FrozenSet[str]] = {
    "steady": ALL_PHASES,  # restoring the previous phase is always legal
    "migrating": frozenset({"steady", "recovering"}),
    "completing": frozenset({"steady", "migrating", "rebalancing", "recovering"}),
    "rebalancing": frozenset({"steady", "recovering"}),
    "recovering": frozenset({"steady"}),
}


@dataclass(frozen=True)
class PhasePolicy:
    """Pins functions matching (module prefix, class, name) to phases."""

    description: str
    allowed: FrozenSet[str]
    module: Optional[str] = None  # module_path prefix, e.g. "repro/core/"
    cls: Optional[str] = None
    func: Optional[str] = None

    def matches(self, module_path: str, cls: Optional[str], func: str) -> bool:
        if self.module is not None and not module_path.startswith(self.module):
            return False
        if self.cls is not None and cls != self.cls:
            return False
        if self.func is not None and func != self.func:
            return False
        return True


#: The protocol legality table (PAPER.md §3-4, docs/FAULT_INJECTION.md,
#: docs/SHARDING.md).  Order matters only for reporting; all matching
#: policies apply.
POLICIES: Tuple[PhasePolicy, ...] = (
    PhasePolicy(
        "JISC state completion (Procedures 2/3) runs only inside a "
        "completing span",
        frozenset({"completing"}),
        module="repro/core/completion.py",
    ),
    PhasePolicy(
        "the JISC transition (pending-counter initialization, state "
        "adoption) runs only inside a migrating span",
        frozenset({"migrating"}),
        module="repro/core/transition.py",
    ),
    PhasePolicy(
        "strategy migration steps run only inside the migrating span "
        "opened by MigrationStrategy.transition",
        frozenset({"migrating"}),
        func="_do_transition",
    ),
    PhasePolicy(
        "eager whole-state rebuild is Moving State's halting phase",
        frozenset({"migrating"}),
        func="build_state_full",
    ),
    PhasePolicy(
        "per-value state completion belongs to the completing phase",
        frozenset({"completing"}),
        func="build_state_for_key",
    ),
    PhasePolicy(
        "checkpoint capture runs at steady; restore runs under the "
        "recovering span of RecoveryManager._recover",
        frozenset({"steady", "recovering"}),
        module="repro/engine/checkpoint.py",
    ),
    PhasePolicy(
        "shard replay mutates per-shard state: legal at steady hand-off, "
        "under a rebalancing span, or during command-log recovery",
        frozenset({"steady", "rebalancing", "recovering"}),
        cls="ShardWorker",
        func="replay",
    ),
    PhasePolicy(
        "shard eviction is driven by window slides (steady), key moves "
        "(rebalancing) or command-log recovery",
        frozenset({"steady", "rebalancing", "recovering"}),
        cls="ShardWorker",
        func="evict",
    ),
    PhasePolicy(
        "rebalance-session settlement follows key completion or lazy "
        "expiry; never inside migrating/completing spans",
        frozenset({"steady", "rebalancing", "recovering"}),
        cls="RebalanceSession",
        func="settle",
    ),
    PhasePolicy(
        "rebalance-session retirement follows key completion or lazy "
        "expiry; never inside migrating/completing spans",
        frozenset({"steady", "rebalancing", "recovering"}),
        cls="RebalanceSession",
        func="retire",
    ),
)

#: Functions that conceptually execute inside a phase without opening the
#: tracer span themselves.  The only sanctioned case is the perf fast
#: path (repro/perf/naive.py), whose method replacements are exercised
#: with tracing disabled yet perform the same protocol step as the traced
#: original; entries are (module_path, class-or-None, function) -> phases.
PHASE_GRANTS: Dict[Tuple[str, Optional[str], str], FrozenSet[str]] = {}


@dataclass
class PhaseViolation:
    path: str
    line: int
    message: str


@dataclass
class PolicyResult:
    qual: str
    allowed: FrozenSet[str]
    observed: FrozenSet[str]
    description: str

    @property
    def ok(self) -> bool:
        return self.observed <= self.allowed


@dataclass
class PhaseProof:
    """Output of :func:`verify_phases`: contexts, policies, violations."""

    contexts: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    policies: List[PolicyResult] = field(default_factory=list)
    violations: List[PhaseViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def result_for(self, qual_suffix: str) -> Optional[PolicyResult]:
        """Policy result whose qual ends with ``qual_suffix`` (test helper)."""
        for result in self.policies:
            if result.qual.endswith(qual_suffix):
                return result
        return None


def _grants(project: Project, qual: str) -> FrozenSet[str]:
    fn = project.functions[qual]
    opens = frozenset(fn.facts.opens)
    extra = PHASE_GRANTS.get((fn.module_path, fn.cls, fn.name))
    if extra:
        opens = opens | extra
    return opens


def _propagate(
    project: Project,
) -> Tuple[Dict[str, Set[str]], Dict[Tuple[str, str], Tuple[str, int]]]:
    """Fixpoint phase contexts plus one witness edge per (function, phase)."""
    contexts: Dict[str, Set[str]] = {q: set() for q in project.functions}
    origins: Dict[Tuple[str, str], Tuple[str, int]] = {}
    out_edges: Dict[str, List] = {}
    for edge in project.edges:
        if edge.caller in contexts and edge.callee in contexts:
            out_edges.setdefault(edge.caller, []).append(edge)

    worklist: List[str] = []
    for qual in sorted(project.functions):
        if not project.callers.get(qual):
            contexts[qual].add("steady")
        worklist.append(qual)

    while worklist:
        caller = worklist.pop(0)
        granted = _grants(project, caller)
        contrib = granted if granted else contexts[caller]
        if not contrib:
            continue
        for edge in out_edges.get(caller, ()):
            new = contrib - contexts[edge.callee]
            if not new:
                continue
            contexts[edge.callee].update(new)
            for phase in new:
                origins.setdefault((edge.callee, phase), (caller, edge.line))
            if edge.callee not in worklist:
                worklist.append(edge.callee)
    return contexts, origins


def _witness_chain(
    origins: Dict[Tuple[str, str], Tuple[str, int]], qual: str, phase: str
) -> str:
    """Human-readable caller chain explaining how ``phase`` reaches ``qual``."""
    chain = [qual]
    cur = qual
    for _ in range(8):
        origin = origins.get((cur, phase))
        if origin is None:
            break
        caller, _line = origin
        chain.append(caller)
        cur = caller
    return " <- ".join(chain)


def verify_phases(project: Project) -> PhaseProof:
    """Run the phase-typestate verification over a linked project."""
    proof = PhaseProof()
    contexts, origins = _propagate(project)
    proof.contexts = {q: frozenset(c) for q, c in contexts.items()}

    for qual in sorted(project.functions):
        fn = project.functions[qual]
        observed = proof.contexts[qual]
        # 1. span-entry legality
        for phase in sorted(fn.facts.opens):
            legal = LEGAL_TRANSITIONS[phase] | {phase}
            illegal = observed - legal
            if illegal:
                proof.violations.append(
                    PhaseViolation(
                        fn.module_path,
                        fn.facts.lineno,
                        f"phase-typestate: {qual} opens a '{phase}' span but "
                        f"is reachable from phase(s) {sorted(illegal)}; legal "
                        f"predecessors are {sorted(legal)} "
                        f"(via {_witness_chain(origins, qual, sorted(illegal)[0])})",
                    )
                )
        # 2. function phase policies
        for policy in POLICIES:
            if not policy.matches(fn.module_path, fn.cls, fn.name):
                continue
            result = PolicyResult(qual, policy.allowed, observed, policy.description)
            proof.policies.append(result)
            if not result.ok:
                bad = sorted(observed - policy.allowed)
                proof.violations.append(
                    PhaseViolation(
                        fn.module_path,
                        fn.facts.lineno,
                        f"phase-typestate: {qual} is reachable in phase(s) "
                        f"{bad} but allowed only in {sorted(policy.allowed)} — "
                        f"{policy.description} "
                        f"(via {_witness_chain(origins, qual, bad[0])})",
                    )
                )
    return proof
