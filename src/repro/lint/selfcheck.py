"""``python -m repro.lint --self-check``: prove the analyzer itself works.

CI runs this before trusting a clean lint pass: a lint that silently
stopped finding anything (broken registration, a solver that never visits
blocks, suppressions that eat everything) looks exactly like a clean tree.
The self-check lints embedded fixtures with *known* findings and verifies
each rule fires where it must and stays quiet where it must not, and that
the CFG/dataflow machinery still reaches fixpoints on representative
shapes.  Any mismatch is an internal error (exit 2), never a finding.
"""

from __future__ import annotations

import ast
import textwrap
from typing import List, Optional, Sequence, Tuple

from repro.lint.cfg import build_cfg
from repro.lint.core import all_rules, lint_source
from repro.lint.dataflow import reaching_definitions

#: (name, source, rule ids that MUST fire, rule ids that MUST NOT fire)
_FIXTURES: Tuple[Tuple[str, str, Sequence[str], Sequence[str]], ...] = (
    (
        "JISC008 fires on set iteration feeding emit",
        """
        class Op:
            def flush(self):
                pending = {1, 2, 3}
                for item in pending:
                    self.emit(item)
        """,
        ["JISC008"],
        [],
    ),
    (
        "JISC008 respects the sorted() barrier",
        """
        class Op:
            def flush(self):
                pending = {1, 2, 3}
                for item in sorted(pending):
                    self.emit(item)
        """,
        [],
        ["JISC008"],
    ),
    (
        "JISC008 allows order-insensitive set accumulation",
        """
        class Op:
            def note(self, ops):
                seen = set()
                for op in {o for o in ops}:
                    seen.add(id(op))
        """,
        [],
        ["JISC008"],
    ),
    (
        "JISC009 fires on a WAL with no replay path",
        """
        class Engine:
            def process(self, item):
                self.wal_log.append(item)
                self.consume(item)
        """,
        ["JISC009"],
        [],
    ),
    (
        "JISC009 accepts a deduplicating replay path",
        """
        class Engine:
            def process(self, item):
                self.wal_log.append(item)

            def recover(self):
                for item in self.wal_log:
                    if item not in self._delivered_seen:
                        self.emit(item)
        """,
        [],
        ["JISC009"],
    ),
    (
        "JISC010 fires on an unrestored phase span",
        """
        PHASE_MIGRATING = "migrating"

        class Strategy:
            def transition(self, tracer):
                prev = tracer.set_phase(PHASE_MIGRATING)
                self.work()
        """,
        ["JISC010"],
        [],
    ),
    (
        "JISC010 accepts the try/finally restore idiom",
        """
        PHASE_MIGRATING = "migrating"

        class Strategy:
            def transition(self, tracer):
                prev = tracer.set_phase(PHASE_MIGRATING) if tracer.enabled else None
                try:
                    self.work()
                finally:
                    if prev is not None:
                        tracer.set_phase(prev)
        """,
        [],
        ["JISC010"],
    ),
    (
        "suppression comments silence a finding",
        """
        class Op:
            def flush(self):
                pending = {1}
                for item in pending:
                    self.emit(item)  # jisclint: disable=JISC008
        """,
        [],
        ["JISC008", "JISC000"],
    ),
    (
        "unused suppressions surface as JISC000",
        """
        class Op:
            def flush(self):  # jisclint: disable=JISC008
                return None
        """,
        ["JISC000"],
        [],
    ),
)

#: fixture path inside the engine tree so engine-only rules apply
_FIXTURE_PATH = "src/repro/_selfcheck_fixture.py"


def _check_fixture(
    name: str,
    source: str,
    must_fire: Sequence[str],
    must_not: Sequence[str],
) -> Optional[str]:
    findings = lint_source(textwrap.dedent(source), path=_FIXTURE_PATH)
    fired = {f.rule_id for f in findings}
    for rid in must_fire:
        if rid not in fired:
            return f"{name}: expected {rid} to fire; got {sorted(fired) or 'none'}"
    for rid in must_not:
        if rid in fired:
            hits = [f.message for f in findings if f.rule_id == rid]
            return f"{name}: {rid} fired unexpectedly: {hits[0]}"
    return None


def _check_machinery() -> Optional[str]:
    """CFG + solver sanity on a loop/try/finally shape."""
    src = textwrap.dedent(
        """
        def fn(xs):
            total = 0
            for x in xs:
                try:
                    total = total + x
                except ValueError:
                    continue
                finally:
                    x = None
            return total
        """
    )
    func = ast.parse(src).body[0]
    cfg = build_cfg(func)
    if not cfg.blocks or cfg.entry not in cfg.blocks:
        return "machinery: build_cfg produced no entry block"
    block_in, _ = reaching_definitions(cfg)
    reached = [bid for bid, state in block_in.items() if state]
    if not reached:
        return "machinery: reaching-definitions fixpoint never left bottom"
    exits = cfg.exit_blocks()
    if not exits:
        return "machinery: CFG has no normal exit"
    return None


def run_self_check() -> Tuple[bool, List[str]]:
    """Returns (ok, report lines)."""
    lines: List[str] = []
    ok = True
    registry = all_rules()
    expected = {"JISC008", "JISC009", "JISC010"}
    missing = expected - set(registry)
    if missing:
        ok = False
        lines.append(f"FAIL registry: missing rules {sorted(missing)}")
    else:
        lines.append(f"ok registry ({len(registry)} rules)")
    error = _check_machinery()
    if error:
        ok = False
        lines.append(f"FAIL {error}")
    else:
        lines.append("ok cfg/dataflow machinery")
    for name, source, must_fire, must_not in _FIXTURES:
        error = _check_fixture(name, source, must_fire, must_not)
        if error:
            ok = False
            lines.append(f"FAIL {error}")
        else:
            lines.append(f"ok {name}")
    return ok, lines
