"""Rule framework: registry, suppression handling, file/tree runners.

A :class:`Rule` declares ``visit_<NodeType>`` methods (plain :mod:`ast`
node class names); the runner parses each file once and dispatches every
node to every interested rule, so adding rules does not add parse
passes.  Rules report through :meth:`LintContext.report`, which applies
line- and file-level suppressions before a finding becomes visible.

Suppression comments (scanned textually, so they work on any line,
including ones inside multi-line statements)::

    something_suspicious()  # jisclint: disable=JISC004
    # jisclint: disable-file=JISC001

Every suppression must actually suppress something; unused ones are
reported as JISC000 so opt-outs cannot outlive the code they excused.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Rule id for the unused-suppression meta finding.
UNUSED_SUPPRESSION = "JISC000"

_SUPPRESS_RE = re.compile(
    r"#\s*jisclint:\s*(disable|disable-file)\s*=\s*"
    r"(JISC\d{3}(?:\s*,\s*JISC\d{3})*)"
)


class Finding:
    """One reported violation: where, which rule, and why."""

    __slots__ = ("rule_id", "path", "line", "col", "message")

    def __init__(self, rule_id: str, path: str, line: int, col: int, message: str):
        self.rule_id = rule_id
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Finding({self.rule_id} {self.path}:{self.line}:{self.col})"


class _Suppressions:
    """Per-file suppression table parsed from ``# jisclint:`` comments.

    Comments are located with :mod:`tokenize` rather than a line scan so
    that the *text* of a suppression inside a string literal (e.g. a lint
    fixture embedded in a test file) does not count as a suppression of
    the embedding file.
    """

    def __init__(self, source: str):
        # line number -> set of rule ids disabled on that line
        self.by_line: Dict[int, Set[str]] = {}
        # rule ids disabled for the whole file -> declaring line
        self.file_wide: Dict[str, int] = {}
        # (line, rule_id) pairs that actually suppressed a finding
        self.used: Set[Tuple[int, str]] = set()
        for lineno, text in self._comments(source):
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            kind, ids = m.group(1), m.group(2)
            rule_ids = {part.strip() for part in ids.split(",")}
            if kind == "disable-file":
                for rid in rule_ids:
                    self.file_wide.setdefault(rid, lineno)
            else:
                self.by_line.setdefault(lineno, set()).update(rule_ids)

    @staticmethod
    def _comments(source: str) -> Iterator[Tuple[int, str]]:
        readline = io.StringIO(source).readline
        try:
            for tok in tokenize.generate_tokens(readline):
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Unparseable files are reported as JISC999 by the runner;
            # suppression parsing just stops at the damage.
            return

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule_id in self.file_wide:
            self.used.add((self.file_wide[finding.rule_id], finding.rule_id))
            return True
        on_line = self.by_line.get(finding.line)
        if on_line and finding.rule_id in on_line:
            self.used.add((finding.line, finding.rule_id))
            return True
        return False

    def unused(self) -> Iterator[Tuple[int, str, str]]:
        for lineno, rule_ids in sorted(self.by_line.items()):
            for rid in sorted(rule_ids):
                if (lineno, rid) not in self.used:
                    yield lineno, rid, "line"
        for rid, lineno in sorted(self.file_wide.items()):
            if (lineno, rid) not in self.used:
                yield lineno, rid, "file"


class LintContext:
    """Everything a rule may consult about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        #: Path with forward slashes, for stable matching in rules/output.
        self.norm_path = path.replace(os.sep, "/")
        #: ``repro``-package-relative module path ("repro/engine/metrics.py"),
        #: or None when the file is not under a ``repro`` package directory.
        self.module_path = self._module_path(self.norm_path)
        #: True when the file belongs to the engine proper (src/repro/...).
        self.in_engine = self.module_path is not None and not self.module_path.startswith(
            "repro/lint/"
        )
        self._suppressions = _Suppressions(source)
        self._findings: List[Finding] = []
        #: child node -> parent node, for rules that need expression context.
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    @staticmethod
    def _module_path(norm_path: str) -> Optional[str]:
        parts = norm_path.split("/")
        if "repro" not in parts:
            return None
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        finding = Finding(
            rule_id,
            self.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            message,
        )
        if not self._suppressions.suppresses(finding):
            self._findings.append(finding)

    def finish(self) -> List[Finding]:
        """Findings plus unused-suppression warnings, sorted by location."""
        out = list(self._findings)
        for lineno, rid, kind in self._suppressions.unused():
            out.append(
                Finding(
                    UNUSED_SUPPRESSION,
                    self.path,
                    lineno,
                    1,
                    f"unused suppression of {rid}: nothing in this {kind} "
                    f"triggers it; remove the comment",
                )
            )
        out.sort(key=Finding.sort_key)
        return out


class Rule:
    """Base class for all jisclint rules.

    Subclasses set ``rule_id`` / ``name`` / ``description`` and define
    ``visit_<NodeType>`` methods taking ``(node, ctx)``.  ``applies_to``
    gates whole files; the default applies everywhere the runner looks.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, ctx: LintContext) -> bool:
        return True

    def begin_file(self, ctx: LintContext) -> None:
        """Hook called before the AST walk of each applicable file."""

    def end_file(self, ctx: LintContext) -> None:
        """Hook called after the AST walk of each applicable file."""

    def handlers(self) -> Dict[str, str]:
        """Map of AST node class name -> bound method name."""
        out = {}
        for attr in dir(self):
            if attr.startswith("visit_"):
                out[attr[len("visit_"):]] = attr
        return out


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, keyed by rule id (import-populated)."""
    # Populate on first use so `from repro.lint.core import ...` alone works.
    if not _REGISTRY:
        from repro.lint import flowrules as _flowrules  # noqa: F401
        from repro.lint import rules as _rules  # noqa: F401
    return dict(_REGISTRY)


def _instantiate(select: Optional[Iterable[str]]) -> List[Rule]:
    registry = all_rules()
    if select is None:
        ids = sorted(registry)
    else:
        ids = []
        for rid in select:
            if rid not in registry:
                raise KeyError(f"unknown rule id: {rid}")
            ids.append(rid)
    return [registry[rid]() for rid in ids]


def _analyze_source(
    source: str,
    path: str,
    select: Optional[Iterable[str]],
) -> Tuple[Optional[LintContext], List[Finding]]:
    """Parse and run per-file rules; the context is returned *unfinished*
    so the whole-program pass can add findings before :meth:`finish`."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, [
            Finding(
                "JISC999",
                path,
                exc.lineno or 1,
                (exc.offset or 0) + 1,
                f"syntax error: {exc.msg}",
            )
        ]
    ctx = LintContext(path, source, tree)
    active = [r for r in _instantiate(select) if r.applies_to(ctx)]
    dispatch: Dict[str, List[Tuple[Rule, str]]] = {}
    for rule in active:
        rule.begin_file(ctx)
        for node_name, method in rule.handlers().items():
            dispatch.setdefault(node_name, []).append((rule, method))
    for node in ast.walk(tree):
        for rule, method in dispatch.get(type(node).__name__, ()):
            getattr(rule, method)(node, ctx)
    for rule in active:
        rule.end_file(ctx)
    return ctx, []


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string (the unit-test entry point)."""
    ctx, errors = _analyze_source(source, path, select)
    if ctx is None:
        return errors
    return ctx.finish()


def lint_file(path: str, select: Optional[Iterable[str]] = None) -> List[Finding]:
    with tokenize.open(path) as fh:  # honors PEP 263 encoding declarations
        source = fh.read()
    return lint_source(source, path=path, select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen: Set[str] = set()
    for base in paths:
        if os.path.isfile(base):
            if base not in seen:
                seen.add(base)
                yield base
            continue
        if not os.path.isdir(base):
            raise FileNotFoundError(f"no such file or directory: {base!r}")
        collected = []
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                d for d in dirnames if d not in ("__pycache__", ".git")
            )
            for fn in sorted(filenames):
                if fn.endswith(".py"):
                    collected.append(os.path.join(dirpath, fn))
        for p in collected:
            if p not in seen:
                seen.add(p)
                yield p


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    program: bool = True,
    callgraph_cache: Optional[str] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by location.

    With ``program`` (the default), the whole-program phase-typestate and
    exactly-once verifiers run over the engine files among ``paths`` after
    the per-file rules; their findings go through the same per-file
    suppression tables (they report as JISC004/JISC009).  ``callgraph_cache``
    names an optional JSON file reusing call-graph facts across runs.
    """
    findings: List[Finding] = []
    contexts: List[LintContext] = []
    for path in iter_python_files(paths):
        with tokenize.open(path) as fh:
            source = fh.read()
        ctx, errors = _analyze_source(source, path, select)
        if ctx is None:
            findings.extend(errors)
        else:
            contexts.append(ctx)
    selected = None if select is None else set(select)
    if program and (selected is None or "JISC004" in selected):
        from repro.lint.program import run_program_analysis

        run_program_analysis(contexts, cache_path=callgraph_cache)
    for ctx in contexts:
        findings.extend(ctx.finish())
    findings.sort(key=Finding.sort_key)
    return findings
