"""Project-wide symbol table and call graph for whole-program analysis.

The build is two-phase so that CI can cache it between steps:

1. **Extraction** (:func:`extract_module_facts`) walks one module's AST and
   produces :class:`ModuleFacts` — a JSON-serializable summary of classes,
   functions, imports, calls, assignments, and ``set_phase`` span opens.
   Facts are keyed by a content hash, so an unchanged file never needs
   re-extraction (see ``--callgraph-cache``).
2. **Linking** (:class:`Project`) resolves names across modules: imports to
   their targets, ``self.m()`` through the class hierarchy, and ``recv.m()``
   through the receiver's annotated type (the tree is mypy-strict, so
   parameter / attribute / return annotations carry enough type information
   for single-dispatch resolution).  Method calls through a base-class-typed
   receiver fan out to every override in the project — the conservative
   choice for the phase-typestate verifier built on top
   (:mod:`repro.lint.typestate`).

Unresolvable calls (``f()()``, subscripted receivers, ``Callable`` attributes
such as ``completion_hook``) simply contribute no edge; the per-file AST
rules still cover those sites by chain pattern.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

FACTS_FORMAT_VERSION = 1

#: tracer phase constants -> short phase names used throughout the verifier.
PHASE_CONSTANTS = {
    "PHASE_STEADY": "steady",
    "PHASE_MIGRATING": "migrating",
    "PHASE_COMPLETING": "completing",
    "PHASE_RECOVERING": "recovering",
    "PHASE_REBALANCING": "rebalancing",
}


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None when the base is not a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _strip_wrappers(ann: str) -> str:
    ann = ann.strip().strip("\"'")
    changed = True
    while changed:
        changed = False
        for wrapper in ("Optional", "Final", "ClassVar"):
            prefix = wrapper + "["
            if ann.startswith(prefix) and ann.endswith("]"):
                ann = ann[len(prefix) : -1].strip().strip("\"'")
                changed = True
    return ann


def annotation_head(ann: Optional[str]) -> Optional[str]:
    """Head class name of an annotation string, through Optional/quotes.

    ``Optional[RebalanceSession]`` -> ``RebalanceSession``; containers like
    ``List[ShardWorker]`` resolve to the container head (not a project class,
    so dispatch through them is skipped — the conservative outcome).
    """
    if not ann:
        return None
    ann = _strip_wrappers(ann)
    head = ann.split("[", 1)[0].strip()
    # "A | None" unions: take the first non-None alternative.
    if "|" in head:
        head = next((p.strip() for p in head.split("|") if p.strip() != "None"), "")
    return head or None


#: container heads whose iteration yields their first type argument
_ITERABLE_CONTAINERS = {
    "List",
    "list",
    "Set",
    "set",
    "FrozenSet",
    "frozenset",
    "Sequence",
    "Iterable",
    "Iterator",
    "Collection",
    "Tuple",
    "tuple",
    "Deque",
    "deque",
}


def annotation_element(ann: Optional[str]) -> Optional[str]:
    """Element type head for iterating a container annotation.

    ``List[ShardWorker]`` -> ``ShardWorker``; ``Tuple[str, ...]`` -> ``str``;
    mapping types yield their keys, which are never protocol objects here,
    so they resolve to None.
    """
    if not ann:
        return None
    ann = _strip_wrappers(ann)
    if "[" not in ann or not ann.endswith("]"):
        return None
    head, inner = ann.split("[", 1)
    if head.strip() not in _ITERABLE_CONTAINERS:
        return None
    inner = inner[:-1]
    # First top-level comma-separated argument.
    depth = 0
    for i, ch in enumerate(inner):
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            inner = inner[:i]
            break
    return annotation_head(inner)


# ---------------------------------------------------------------------------
# Facts (extraction output; JSON-serializable)
# ---------------------------------------------------------------------------


@dataclass
class FunctionFacts:
    name: str
    cls: Optional[str]
    lineno: int
    params: Dict[str, str] = field(default_factory=dict)
    returns: Optional[str] = None
    #: (line, dotted chain) of every call with a resolvable chain
    calls: List[Tuple[int, Tuple[str, ...]]] = field(default_factory=list)
    #: ordered local assignments: (target, kind, payload-chain); kind is one
    #: of "name" / "attr" / "call" — enough to re-run type inference at link.
    assigns: List[Tuple[str, str, Tuple[str, ...]]] = field(default_factory=list)
    #: phases opened by set_phase(PHASE_*) anywhere in the body
    opens: List[str] = field(default_factory=list)

    @property
    def qual_suffix(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class ClassFacts:
    name: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    #: attribute name -> annotation head (from class-level or self.x: T)
    attrs: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> constructor chain for ``self.x = Ctor(...)``
    attr_ctors: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    methods: List[FunctionFacts] = field(default_factory=list)


@dataclass
class ModuleFacts:
    path: str
    module_path: str
    sha: str
    #: local name -> dotted import target ("repro.core.completion.complete_value_left_deep")
    imports: Dict[str, str] = field(default_factory=dict)
    classes: List[ClassFacts] = field(default_factory=list)
    functions: List[FunctionFacts] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module_path": self.module_path,
            "sha": self.sha,
            "imports": self.imports,
            "classes": [
                {
                    "name": c.name,
                    "lineno": c.lineno,
                    "bases": c.bases,
                    "attrs": c.attrs,
                    "attr_ctors": {k: list(v) for k, v in c.attr_ctors.items()},
                    "methods": [_fn_to_json(m) for m in c.methods],
                }
                for c in self.classes
            ],
            "functions": [_fn_to_json(f) for f in self.functions],
        }

    @staticmethod
    def from_json(data: Dict[str, object]) -> "ModuleFacts":
        classes = [
            ClassFacts(
                name=c["name"],
                lineno=c["lineno"],
                bases=list(c["bases"]),
                attrs=dict(c["attrs"]),
                attr_ctors={k: tuple(v) for k, v in c["attr_ctors"].items()},
                methods=[_fn_from_json(m) for m in c["methods"]],
            )
            for c in data["classes"]  # type: ignore[union-attr]
        ]
        return ModuleFacts(
            path=data["path"],  # type: ignore[arg-type]
            module_path=data["module_path"],  # type: ignore[arg-type]
            sha=data["sha"],  # type: ignore[arg-type]
            imports=dict(data["imports"]),  # type: ignore[call-overload]
            classes=classes,
            functions=[_fn_from_json(f) for f in data["functions"]],  # type: ignore[union-attr]
        )


def _fn_to_json(fn: FunctionFacts) -> Dict[str, object]:
    return {
        "name": fn.name,
        "cls": fn.cls,
        "lineno": fn.lineno,
        "params": fn.params,
        "returns": fn.returns,
        "calls": [[line, list(chain)] for line, chain in fn.calls],
        "assigns": [[t, k, list(c)] for t, k, c in fn.assigns],
        "opens": fn.opens,
    }


def _fn_from_json(data: Dict[str, object]) -> FunctionFacts:
    return FunctionFacts(
        name=data["name"],  # type: ignore[arg-type]
        cls=data["cls"],  # type: ignore[arg-type]
        lineno=data["lineno"],  # type: ignore[arg-type]
        params=dict(data["params"]),  # type: ignore[call-overload]
        returns=data["returns"],  # type: ignore[arg-type]
        calls=[(line, tuple(chain)) for line, chain in data["calls"]],  # type: ignore[union-attr]
        assigns=[(t, k, tuple(c)) for t, k, c in data["assigns"]],  # type: ignore[union-attr]
        opens=list(data["opens"]),  # type: ignore[call-overload]
    )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _ann_str(node: Optional[ast.expr]) -> Optional[str]:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return None


def _extract_function(
    node: ast.AST, cls: Optional[ClassFacts]
) -> FunctionFacts:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    fn = FunctionFacts(name=node.name, cls=cls.name if cls else None, lineno=node.lineno)
    args = node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        raw = _ann_str(arg.annotation)
        if raw:
            fn.params[arg.arg] = raw
    fn.returns = _ann_str(node.returns)

    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            chain = _dotted(sub.func)
            if chain is None:
                continue
            fn.calls.append((sub.lineno, chain))
            if chain[-1] == "set_phase" and sub.args:
                arg0 = sub.args[0]
                if isinstance(arg0, ast.Name) and arg0.id in PHASE_CONSTANTS:
                    phase = PHASE_CONSTANTS[arg0.id]
                    if phase not in fn.opens:
                        fn.opens.append(phase)
        elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target = sub.targets[0]
            if not isinstance(target, ast.Name):
                # ``self.x = Ctor(...)`` / ``self.x = param`` in methods
                # feeds class attribute types.
                if (
                    cls is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if isinstance(sub.value, ast.Call):
                        ctor = _dotted(sub.value.func)
                        if ctor is not None:
                            cls.attr_ctors.setdefault(target.attr, ctor)
                    elif (
                        isinstance(sub.value, ast.Name)
                        and sub.value.id in fn.params
                    ):
                        cls.attrs.setdefault(target.attr, fn.params[sub.value.id])
                continue
            value = sub.value
            # Peel ``x if cond else None`` so guarded idioms keep their type.
            if isinstance(value, ast.IfExp):
                for branch in (value.body, value.orelse):
                    if not (isinstance(branch, ast.Constant) and branch.value is None):
                        value = branch
                        break
            if isinstance(value, ast.Call):
                chain = _dotted(value.func)
                if chain is not None:
                    fn.assigns.append((target.id, "call", chain))
            elif isinstance(value, ast.Name):
                fn.assigns.append((target.id, "name", (value.id,)))
            elif isinstance(value, ast.Attribute):
                chain = _dotted(value)
                if chain is not None:
                    fn.assigns.append((target.id, "attr", chain))
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            # Loop targets are typed by their iterable's element type.
            if isinstance(sub.target, ast.Name):
                if isinstance(sub.iter, ast.Call):
                    chain = _dotted(sub.iter.func)
                    if chain is not None:
                        fn.assigns.append((sub.target.id, "iter_call", chain))
                else:
                    chain = _dotted(sub.iter)
                    if chain is not None:
                        fn.assigns.append((sub.target.id, "iter", chain))
        elif isinstance(sub, ast.AnnAssign):
            target = sub.target
            if (
                cls is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                raw = _ann_str(sub.annotation)
                if raw:
                    cls.attrs.setdefault(target.attr, raw)
            elif isinstance(target, ast.Name):
                raw = _ann_str(sub.annotation)
                if raw:
                    fn.assigns.append((target.id, "ann", (raw,)))
    return fn


def extract_module_facts(path: str, module_path: str, tree: ast.Module, source: str) -> ModuleFacts:
    """Summarize one parsed module into linkable :class:`ModuleFacts`."""
    facts = ModuleFacts(path=path, module_path=module_path, sha=content_hash(source))
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                facts.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
            for alias in stmt.names:
                facts.imports[alias.asname or alias.name] = f"{stmt.module}.{alias.name}"
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.functions.append(_extract_function(stmt, None))
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassFacts(name=stmt.name, lineno=stmt.lineno)
            for base in stmt.bases:
                chain = _dotted(base)
                if chain is not None:
                    cls.bases.append(chain[-1])
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods.append(_extract_function(sub, cls))
                elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                    raw = _ann_str(sub.annotation)
                    if raw:
                        cls.attrs.setdefault(sub.target.id, raw)
            facts.classes.append(cls)
    return facts


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------


@dataclass
class LinkedFunction:
    qual: str
    module_path: str
    facts: FunctionFacts

    @property
    def cls(self) -> Optional[str]:
        return self.facts.cls

    @property
    def name(self) -> str:
        return self.facts.name


@dataclass(frozen=True)
class CallEdge:
    caller: str
    callee: str
    line: int


class Project:
    """Linked whole-program view: functions, classes, resolved call edges."""

    def __init__(self, modules: Sequence[ModuleFacts]):
        self.modules: List[ModuleFacts] = sorted(modules, key=lambda m: m.module_path)
        self.functions: Dict[str, LinkedFunction] = {}
        self.classes: Dict[str, List[Tuple[str, ClassFacts]]] = {}
        self._module_by_dotted: Dict[str, ModuleFacts] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        self.edges: List[CallEdge] = []
        self._link()

    # -- symbol table ------------------------------------------------------

    @staticmethod
    def _dotted_name(module_path: str) -> str:
        stem = module_path[:-3] if module_path.endswith(".py") else module_path
        if stem.endswith("/__init__"):
            stem = stem[: -len("/__init__")]
        return stem.replace("/", ".")

    def qual(self, module_path: str, suffix: str) -> str:
        return f"{module_path}::{suffix}"

    def _link(self) -> None:
        self._module_by_path: Dict[str, ModuleFacts] = {
            m.module_path: m for m in self.modules
        }
        for mod in self.modules:
            self._module_by_dotted[self._dotted_name(mod.module_path)] = mod
            for fn in mod.functions:
                self.functions[self.qual(mod.module_path, fn.qual_suffix)] = LinkedFunction(
                    self.qual(mod.module_path, fn.qual_suffix), mod.module_path, fn
                )
            for cls in mod.classes:
                self.classes.setdefault(cls.name, []).append((mod.module_path, cls))
                for method in cls.methods:
                    q = self.qual(mod.module_path, method.qual_suffix)
                    self.functions[q] = LinkedFunction(q, mod.module_path, method)
        # Transitive subclass map (by class name; collisions union).
        direct: Dict[str, Set[str]] = {}
        for name, defs in self.classes.items():
            for _, cls in defs:
                for base in cls.bases:
                    direct.setdefault(base, set()).add(name)
        for name in list(self.classes):
            seen: Set[str] = set()
            stack = list(direct.get(name, ()))
            while stack:
                sub = stack.pop()
                if sub in seen:
                    continue
                seen.add(sub)
                stack.extend(direct.get(sub, ()))
            self._subclasses[name] = seen
        for mod in self.modules:
            for fn in mod.functions:
                self._link_function(mod, None, fn)
            for cls in mod.classes:
                for method in cls.methods:
                    self._link_function(mod, cls, method)
        self.edges.sort(key=lambda e: (e.caller, e.callee, e.line))
        self.callers: Dict[str, List[CallEdge]] = {}
        for edge in self.edges:
            self.callers.setdefault(edge.callee, []).append(edge)

    # -- type machinery ----------------------------------------------------

    def _class_defs(self, name: Optional[str]) -> List[Tuple[str, ClassFacts]]:
        return self.classes.get(name or "", [])

    def _mro_lookup(self, cls_name: str, method: str) -> List[str]:
        """Quals of ``method`` as defined on ``cls_name`` or its nearest base."""
        seen: Set[str] = set()
        stack = [cls_name]
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            found: List[str] = []
            bases: List[str] = []
            for mod_path, cls in self._class_defs(name):
                for m in cls.methods:
                    if m.name == method:
                        found.append(self.qual(mod_path, f"{cls.name}.{method}"))
                bases.extend(cls.bases)
            if found:
                return found
            stack.extend(bases)
        return []

    def _dispatch(self, cls_name: str, method: str) -> List[str]:
        """Static target plus every subclass override (virtual dispatch)."""
        targets = list(self._mro_lookup(cls_name, method))
        for sub in sorted(self._subclasses.get(cls_name, ())):
            for mod_path, cls in self._class_defs(sub):
                for m in cls.methods:
                    if m.name == method:
                        q = self.qual(mod_path, f"{cls.name}.{method}")
                        if q not in targets:
                            targets.append(q)
        return targets

    def _attr_raw(self, cls_name: str, attr: str) -> Optional[str]:
        """Raw annotation string of ``attr`` on ``cls_name`` or a base."""
        seen: Set[str] = set()
        stack = [cls_name]
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            for mod_path, cls in self._class_defs(name):
                if attr in cls.attrs:
                    return cls.attrs[attr]
                if attr in cls.attr_ctors:
                    ctor = cls.attr_ctors[attr]
                    if ctor[-1] in self.classes:
                        return ctor[-1]
                    raw = self._ctor_return(mod_path, ctor)
                    if raw:
                        return raw
                stack.extend(cls.bases)
        return None

    def _ctor_return(self, mod_path: str, ctor: Tuple[str, ...]) -> Optional[str]:
        """Return annotation of ``self.x = factory(...)``'s factory."""
        mod = self._module_by_path.get(mod_path)
        if mod is None or len(ctor) != 1:
            return None
        for target in self._resolve_chain(mod, None, {}, ctor, line=0):
            fn = self.functions.get(target)
            if fn is not None and fn.facts.returns:
                return fn.facts.returns
        return None

    def _attr_type(self, cls_name: str, attr: str) -> Optional[str]:
        return annotation_head(self._attr_raw(cls_name, attr))

    def _resolve_import(self, mod: ModuleFacts, name: str) -> List[str]:
        """Function quals an imported name refers to (empty if not a function)."""
        target = mod.imports.get(name)
        if target is None:
            return []
        # "pkg.module.symbol": try module=prefix, symbol=last component.
        parts = target.split(".")
        symbol = parts[-1]
        prefix = ".".join(parts[:-1])
        target_mod = self._module_by_dotted.get(prefix)
        if target_mod is not None:
            for fn in target_mod.functions:
                if fn.name == symbol:
                    return [self.qual(target_mod.module_path, symbol)]
            for cls in target_mod.classes:
                if cls.name == symbol:
                    return self._dispatch(symbol, "__init__")
        return []

    def _imported_class(self, mod: ModuleFacts, name: str) -> Optional[str]:
        target = mod.imports.get(name)
        if target is not None and target.split(".")[-1] in self.classes:
            return target.split(".")[-1]
        if name in self.classes:
            return name
        return None

    def _head_class(self, mod: ModuleFacts, raw: Optional[str]) -> Optional[str]:
        head = annotation_head(raw)
        return self._imported_class(mod, head) if head else None

    def _elem_class(self, mod: ModuleFacts, raw: Optional[str]) -> Optional[str]:
        elem = annotation_element(raw)
        return self._imported_class(mod, elem) if elem else None

    def _local_env(self, mod: ModuleFacts, cls: Optional[ClassFacts], fn: FunctionFacts) -> Dict[str, str]:
        """name -> class-name type environment for ``fn``'s locals."""
        env: Dict[str, str] = {}
        raws: Dict[str, str] = {}  # name -> raw annotation, for element types
        if cls is not None:
            env["self"] = cls.name
        for pname, raw in fn.params.items():
            raws[pname] = raw
            resolved = self._head_class(mod, raw)
            if resolved:
                env[pname] = resolved
        for target, kind, payload in fn.assigns:
            typ: Optional[str] = None
            if kind == "ann":
                raws[target] = payload[0]
                typ = self._head_class(mod, payload[0])
            elif kind == "name":
                typ = env.get(payload[0]) or self._imported_class(mod, payload[0])
                if payload[0] in raws:
                    raws[target] = raws[payload[0]]
            elif kind == "attr":
                typ = self._chain_type(mod, cls, env, payload)
                raw = self._chain_raw(mod, cls, env, payload, raws)
                if raw:
                    raws[target] = raw
            elif kind == "call":
                typ = self._call_result_type(mod, cls, env, payload)
            elif kind == "iter":
                raw = self._chain_raw(mod, cls, env, payload, raws)
                typ = self._elem_class(mod, raw)
            elif kind == "iter_call":
                targets = self._resolve_chain(mod, cls, env, payload, line=0)
                rets = {
                    self.functions[t].facts.returns
                    for t in targets
                    if t in self.functions and self.functions[t].facts.returns
                }
                if len(rets) == 1:
                    typ = self._elem_class(mod, rets.pop())
            if typ:
                env[target] = typ
        return env

    def _chain_raw(
        self,
        mod: ModuleFacts,
        cls: Optional[ClassFacts],
        env: Dict[str, str],
        chain: Tuple[str, ...],
        raws: Dict[str, str],
    ) -> Optional[str]:
        """Raw annotation of a dotted chain's value (for element typing)."""
        if len(chain) == 1:
            return raws.get(chain[0])
        owner = self._chain_type(mod, cls, env, chain[:-1])
        if owner is None:
            return None
        return self._attr_raw(owner, chain[-1])

    def _chain_type(
        self,
        mod: ModuleFacts,
        cls: Optional[ClassFacts],
        env: Dict[str, str],
        chain: Tuple[str, ...],
    ) -> Optional[str]:
        """Type (class name) of the value of a dotted chain like ``self.strategy``."""
        base = env.get(chain[0]) or self._imported_class(mod, chain[0])
        if base is None:
            return None
        cur: Optional[str] = base if len(chain) > 1 else env.get(chain[0])
        for attr in chain[1:]:
            if cur is None:
                return None
            cur = self._attr_type(cur, attr)
        return cur

    def _call_result_type(
        self,
        mod: ModuleFacts,
        cls: Optional[ClassFacts],
        env: Dict[str, str],
        chain: Tuple[str, ...],
    ) -> Optional[str]:
        # Constructor call?
        if len(chain) == 1:
            ctor = self._imported_class(mod, chain[0])
            if ctor:
                return ctor
        targets = self._resolve_chain(mod, cls, env, chain, line=0)
        heads = {
            annotation_head(self.functions[t].facts.returns)
            for t in targets
            if t in self.functions and self.functions[t].facts.returns
        }
        if len(heads) == 1:
            head = heads.pop()
            if head in self.classes:
                return head
        return None

    # -- call resolution ---------------------------------------------------

    def _resolve_chain(
        self,
        mod: ModuleFacts,
        cls: Optional[ClassFacts],
        env: Dict[str, str],
        chain: Tuple[str, ...],
        line: int,
    ) -> List[str]:
        if len(chain) == 1:
            name = chain[0]
            for fn in mod.functions:
                if fn.name == name:
                    return [self.qual(mod.module_path, name)]
            return self._resolve_import(mod, name)
        # Receiver type drives method dispatch.
        recv_type: Optional[str]
        if len(chain) == 2:
            recv = chain[0]
            recv_type = env.get(recv)
            if recv_type is None:
                # Module-qualified call: ``module.function(...)``.
                target = mod.imports.get(recv)
                if target is not None:
                    target_mod = self._module_by_dotted.get(target)
                    if target_mod is not None:
                        for fn in target_mod.functions:
                            if fn.name == chain[1]:
                                return [self.qual(target_mod.module_path, chain[1])]
                recv_type = self._imported_class(mod, recv)
                if recv_type is not None:
                    # ClassName.method(...) — static reference, no overrides.
                    return self._mro_lookup(recv_type, chain[1])
                return []
        else:
            recv_type = self._chain_type(mod, cls, env, chain[:-1])
        if recv_type is None:
            return []
        return self._dispatch(recv_type, chain[-1])

    def _link_function(self, mod: ModuleFacts, cls: Optional[ClassFacts], fn: FunctionFacts) -> None:
        caller = self.qual(mod.module_path, fn.qual_suffix)
        env = self._local_env(mod, cls, fn)
        for line, chain in fn.calls:
            for callee in self._resolve_chain(mod, cls, env, chain, line):
                if callee != caller:
                    self.edges.append(CallEdge(caller, callee, line))


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


def load_facts_cache(path: str) -> Dict[str, Dict[str, object]]:
    """sha -> ModuleFacts JSON from a cache file; {} when absent/invalid."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != FACTS_FORMAT_VERSION:
        return {}
    entries = data.get("modules")
    return entries if isinstance(entries, dict) else {}


def save_facts_cache(path: str, modules: Iterable[ModuleFacts]) -> None:
    payload = {
        "version": FACTS_FORMAT_VERSION,
        "modules": {m.sha: m.to_json() for m in modules},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)


def build_project(
    sources: Sequence[Tuple[str, str, ast.Module, str]],
    cache_path: Optional[str] = None,
) -> Project:
    """Link ``(path, module_path, tree, source)`` records into a :class:`Project`.

    With ``cache_path``, extraction is skipped for files whose content hash
    appears in the cache, and the cache file is rewritten with the current
    facts afterwards.
    """
    cached = load_facts_cache(cache_path) if cache_path else {}
    modules: List[ModuleFacts] = []
    for path, module_path, tree, source in sources:
        sha = content_hash(source)
        entry = cached.get(sha)
        if entry is not None and entry.get("module_path") == module_path:
            modules.append(ModuleFacts.from_json(entry))
        else:
            modules.append(extract_module_facts(path, module_path, tree, source))
    if cache_path:
        try:
            save_facts_cache(cache_path, modules)
        except OSError:
            pass
    return Project(modules)
