"""Per-function control-flow graphs for jisclint's dataflow analyses.

A :class:`CFG` is built from a ``FunctionDef`` / ``AsyncFunctionDef`` body by
:func:`build_cfg`.  Statements are grouped into basic blocks; edges follow
Python's structured control flow:

* ``if`` / ``while`` / ``for`` produce the usual branch / back edges (loop
  bodies loop back to their header; ``else`` clauses are honored).
* ``break`` / ``continue`` jump to the innermost loop's after / header block.
* ``return`` routes through every enclosing ``finally`` suite before reaching
  the synthetic :attr:`CFG.exit` block; ``raise`` does the same but lands on
  :attr:`CFG.raise_exit` so analyses can treat abrupt unwinding separately.
* ``try`` bodies get an approximate exceptional edge from their *entry* to
  each handler (any statement of the suite may raise); handlers and the
  normal path both flow through the ``finally`` suite when present.
* ``with`` bodies are treated as straight-line code (the context manager's
  ``__exit__`` is not modeled).

The graph is intentionally modest: no exceptional edges out of arbitrary
calls, no ``__exit__`` modeling.  This matches what the JISC008/JISC010
analyses need — the engine's span and handle idioms are all structured
``try/finally`` or guard-variable patterns (see docs/STATIC_ANALYSIS.md,
"approximations").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Block:
    """A basic block: a run of statements with single-entry control flow."""

    id: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [getattr(s, "lineno", "?") for s in self.stmts]
        return f"Block({self.id}, lines={lines}, succs={self.succs})"


class CFG:
    """Control-flow graph over the body of one function."""

    def __init__(self, func: ast.AST):
        self.func = func
        self.blocks: Dict[int, Block] = {}
        self.entry = self._new_block().id
        self.exit = self._new_block().id
        #: abrupt (``raise``) exits land here instead of :attr:`exit` so that
        #: path-sensitive checks can ignore unwinding if they choose to.
        self.raise_exit = self._new_block().id

    def _new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks[block.id] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def exit_blocks(self) -> List[int]:
        """Blocks flowing into the normal exit (``return`` or fall-off)."""
        return list(self.blocks[self.exit].preds)


class _Lowerer:
    """Recursive-descent lowering of a statement list onto a :class:`CFG`."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        # Innermost-last stacks of (header, after) loop targets and of
        # pending ``finally`` suites that returns/raises must run through.
        self.loops: List[Tuple[int, int]] = []
        self.finallies: List[List[ast.stmt]] = []

    # -- helpers -----------------------------------------------------------

    def _block(self) -> Block:
        return self.cfg._new_block()

    def _emit(self, block: int, stmt: ast.stmt) -> None:
        self.cfg.blocks[block].stmts.append(stmt)

    def _through_finallies(self, src: int, dest: int) -> None:
        """Route an abrupt jump from ``src`` to ``dest`` via pending finallies."""
        cur = src
        for suite in reversed(self.finallies):
            nxt = self._block().id
            self.cfg.add_edge(cur, nxt)
            cur = self.lower_suite(suite, nxt)
        self.cfg.add_edge(cur, dest)

    # -- lowering ----------------------------------------------------------

    def lower_suite(self, stmts: List[ast.stmt], current: int) -> int:
        """Lower ``stmts`` starting in block ``current``; return the block
        where control continues (may be unreachable after a jump)."""
        for stmt in stmts:
            current = self.lower_stmt(stmt, current)
        return current

    def lower_stmt(self, stmt: ast.stmt, current: int) -> int:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            self._emit(current, stmt)  # the test expression
            then_b = self._block().id
            cfg.add_edge(current, then_b)
            then_end = self.lower_suite(stmt.body, then_b)
            after = self._block().id
            cfg.add_edge(then_end, after)
            if stmt.orelse:
                else_b = self._block().id
                cfg.add_edge(current, else_b)
                else_end = self.lower_suite(stmt.orelse, else_b)
                cfg.add_edge(else_end, after)
            else:
                cfg.add_edge(current, after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._block().id
            cfg.add_edge(current, header)
            self._emit(header, stmt)  # test / iteration target
            body_b = self._block().id
            after = self._block().id
            cfg.add_edge(header, body_b)
            cfg.add_edge(header, after)
            self.loops.append((header, after))
            body_end = self.lower_suite(stmt.body, body_b)
            self.loops.pop()
            cfg.add_edge(body_end, header)
            if stmt.orelse:
                # The else suite runs on normal loop exit; fold it between
                # the header and the after block.
                else_b = self._block().id
                cfg.add_edge(header, else_b)
                else_end = self.lower_suite(stmt.orelse, else_b)
                cfg.add_edge(else_end, after)
            return after
        if isinstance(stmt, ast.Break):
            if self.loops:
                cfg.add_edge(current, self.loops[-1][1])
            return self._block().id
        if isinstance(stmt, ast.Continue):
            if self.loops:
                cfg.add_edge(current, self.loops[-1][0])
            return self._block().id
        if isinstance(stmt, ast.Return):
            self._emit(current, stmt)
            self._through_finallies(current, cfg.exit)
            return self._block().id
        if isinstance(stmt, ast.Raise):
            self._emit(current, stmt)
            self._through_finallies(current, cfg.raise_exit)
            return self._block().id
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._emit(current, stmt)  # context expressions
            body_b = self._block().id
            cfg.add_edge(current, body_b)
            return self.lower_suite(stmt.body, body_b)
        # Nested defs/classes are opaque statements for the enclosing CFG.
        self._emit(current, stmt)
        return current

    def _lower_try(self, stmt: ast.Try, current: int) -> int:
        cfg = self.cfg
        try_entry = self._block().id
        cfg.add_edge(current, try_entry)
        if stmt.finalbody:
            self.finallies.append(stmt.finalbody)
        try_end = self.lower_suite(stmt.body, try_entry)
        if stmt.orelse:
            else_b = self._block().id
            cfg.add_edge(try_end, else_b)
            try_end = self.lower_suite(stmt.orelse, else_b)
        handler_ends: List[int] = []
        for handler in stmt.handlers:
            h_b = self._block().id
            # Approximation: the exception may occur anywhere in the try
            # suite; we model it as occurring at the suite's entry.
            cfg.add_edge(try_entry, h_b)
            handler_ends.append(self.lower_suite(handler.body, h_b))
        if stmt.finalbody:
            self.finallies.pop()
            fin_b = self._block().id
            cfg.add_edge(try_end, fin_b)
            for h_end in handler_ends:
                cfg.add_edge(h_end, fin_b)
            # Exception with no matching handler: finally still runs, then
            # the frame unwinds.
            if not stmt.handlers:
                cfg.add_edge(try_entry, fin_b)
            fin_end = self.lower_suite(stmt.finalbody, fin_b)
            if not stmt.handlers:
                cfg.add_edge(fin_end, cfg.raise_exit)
            return fin_end
        after = self._block().id
        cfg.add_edge(try_end, after)
        for h_end in handler_ends:
            cfg.add_edge(h_end, after)
        return after


def build_cfg(func: ast.AST) -> CFG:
    """Build the control-flow graph for a function definition node."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg expects a function node, got {type(func).__name__}")
    cfg = CFG(func)
    lowerer = _Lowerer(cfg)
    first = cfg._new_block().id
    cfg.add_edge(cfg.entry, first)
    end = lowerer.lower_suite(func.body, first)
    cfg.add_edge(end, cfg.exit)
    return cfg
