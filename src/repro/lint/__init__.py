"""jisclint: AST-based invariant linting for the JISC reproduction.

The reproduction's headline guarantees are *structural*: byte-identical
op counts come from every RNG being a seeded ``random.Random`` threaded
explicitly (DESIGN.md); the tracer's zero-perturbation guarantee holds
only while tracer hook results never feed engine logic
(docs/OBSERVABILITY.md); and JISC's complete/closed/duplicate-free state
invariants (PAPER.md §4.3) hold only while ``HashState`` and
``StateStatus`` are mutated through the sanctioned operator/controller
paths.  None of these are things the type system or the test suite can
enforce directly — so this package makes them machine-checked.

Usage::

    python -m repro.lint src tests benchmarks
    python -m repro.lint --format json src
    python -m repro.lint --list-rules

Exit codes: 0 = clean, 1 = findings, 2 = usage/internal error.

Suppressions: append ``# jisclint: disable=JISC004`` (comma-separate for
several rules) to the offending line, or put
``# jisclint: disable-file=JISC004`` on its own line to suppress a rule
for a whole file.  Suppressions that never fire are themselves reported
(JISC000), so stale opt-outs cannot accumulate.
"""

from __future__ import annotations

from repro.lint.core import (
    Finding,
    LintContext,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.lint.reporters import render_json, render_sarif, render_text

# Importing the rule modules populates the registry as a side effect.
from repro.lint import flowrules as _flowrules  # noqa: F401
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "BaselineError",
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "apply_baseline",
    "load_baseline",
    "register",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_baseline",
    "render_json",
    "render_sarif",
    "render_text",
]
