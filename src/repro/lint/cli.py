"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes are CI-friendly: 0 when clean, 1 when any finding (including
unused suppressions) survives, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.core import all_rules, lint_paths
from repro.lint.reporters import render_json, render_rule_list, render_text

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="jisclint: invariant linter for the JISC reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    opts = parser.parse_args(argv)

    if opts.list_rules:
        print(render_rule_list())
        return EXIT_CLEAN

    select: Optional[List[str]] = None
    if opts.select is not None:
        select = [rid.strip() for rid in opts.select.split(",") if rid.strip()]
        unknown = [rid for rid in select if rid not in all_rules()]
        if unknown:
            print(
                f"jisclint: unknown rule id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return EXIT_USAGE

    try:
        findings = lint_paths(opts.paths, select=select)
    except OSError as exc:
        print(f"jisclint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if opts.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
