"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes are CI-friendly and documented:

* ``0`` — clean (no new findings; baseline-accepted findings are fine)
* ``1`` — at least one finding survived suppressions and the baseline
* ``2`` — configuration or usage error (unknown rule id, unreadable
  paths, malformed or policy-violating baseline, failed ``--self-check``)

``--sarif out.sarif`` writes a SARIF 2.1.0 log alongside the normal
output; ``--baseline .jisclint-baseline.json`` subtracts accepted legacy
findings; ``--write-baseline`` regenerates that file from the current
findings; ``--callgraph-cache`` persists whole-program call-graph facts
between runs (CI caches it between steps); ``--self-check`` verifies the
analyzer itself against embedded fixtures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.lint.core import all_rules, lint_paths
from repro.lint.reporters import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="jisclint: invariant linter for the JISC reproduction",
        epilog=(
            "exit codes: 0 clean, 1 new finding(s), 2 usage/config error "
            "(unknown rule, bad baseline, failed self-check)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="additionally write a SARIF 2.1.0 log to PATH",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "JSON baseline of accepted findings; only findings NOT in the "
            "baseline fail the run (entries under repro/migration or "
            "repro/shard are refused)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline PATH and exit",
    )
    parser.add_argument(
        "--callgraph-cache",
        metavar="PATH",
        default=None,
        help="JSON file caching whole-program call-graph facts across runs",
    )
    parser.add_argument(
        "--no-program",
        action="store_true",
        help="skip the whole-program (call graph / phase typestate) pass",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="verify the analyzer against embedded fixtures and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    opts = parser.parse_args(argv)

    if opts.list_rules:
        print(render_rule_list())
        return EXIT_CLEAN

    if opts.self_check:
        from repro.lint.selfcheck import run_self_check

        ok, lines = run_self_check()
        for line in lines:
            print(f"jisclint self-check: {line}")
        if not ok:
            print("jisclint self-check: FAILED", file=sys.stderr)
            return EXIT_USAGE
        print("jisclint self-check: passed")
        return EXIT_CLEAN

    select: Optional[List[str]] = None
    if opts.select is not None:
        select = [rid.strip() for rid in opts.select.split(",") if rid.strip()]
        unknown = [rid for rid in select if rid not in all_rules()]
        if unknown:
            print(
                f"jisclint: unknown rule id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return EXIT_USAGE

    if opts.write_baseline and opts.baseline is None:
        print("jisclint: --write-baseline requires --baseline PATH", file=sys.stderr)
        return EXIT_USAGE

    try:
        findings = lint_paths(
            opts.paths,
            select=select,
            program=not opts.no_program,
            callgraph_cache=opts.callgraph_cache,
        )
    except OSError as exc:
        print(f"jisclint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if opts.write_baseline:
        try:
            payload = render_baseline(findings)
        except BaselineError as exc:
            print(f"jisclint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        with open(opts.baseline, "w", encoding="utf-8") as fh:
            fh.write(payload)
        print(f"jisclint: wrote baseline with {len(findings)} finding(s) to {opts.baseline}")
        return EXIT_CLEAN

    accepted_note = ""
    if opts.baseline is not None:
        try:
            baseline = load_baseline(opts.baseline)
        except BaselineError as exc:
            print(f"jisclint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        result = apply_baseline(findings, baseline)
        findings = result.new
        if result.accepted:
            accepted_note = f" ({len(result.accepted)} baseline-accepted)"
        for rule, path, _message in result.stale:
            print(
                f"jisclint: stale baseline entry {rule} in {path} no longer "
                f"matches any finding; prune it",
                file=sys.stderr,
            )

    if opts.sarif is not None:
        with open(opts.sarif, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(findings))

    if opts.format == "json":
        print(render_json(findings))
    else:
        text = render_text(findings)
        print(text + accepted_note if accepted_note else text)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
