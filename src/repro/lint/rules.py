"""The jisclint rule set: six invariants the reproduction lives or dies by.

Each rule names the invariant it guards and the paper/design section the
invariant comes from; docs/STATIC_ANALYSIS.md carries the long-form
rationale.  Rules that only make sense inside the engine scope
themselves to ``src/repro`` via :attr:`LintContext.in_engine` (tests and
benchmarks may legitimately poke internals they exercise).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple, Union

from repro.lint.core import LintContext, Rule, register

# ---------------------------------------------------------------------------
# Shared AST helpers


def dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None when the base is not a Name.

    Calls in the chain break it (``f().x`` has no stable root), which is
    the conservative choice for every rule below.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def call_chain(call: ast.Call) -> Optional[Tuple[str, ...]]:
    """Dotted chain of a call's function, e.g. ``self.state.add`` ."""
    return dotted_chain(call.func)


def is_statement_call(call: ast.Call, ctx: LintContext) -> bool:
    """True when the call's return value is discarded (``Expr`` statement)."""
    return isinstance(ctx.parent(call), ast.Expr)


# ---------------------------------------------------------------------------
# JISC001 — determinism


@register
class DeterminismRule(Rule):
    """No wall clocks, no entropy, no shared module-level RNG in the engine.

    The substitution table of DESIGN.md replaces wall-clock time with the
    virtual clock and every random choice with a seeded ``random.Random``
    threaded as a parameter; one ``time.time()`` or module-level
    ``random.randrange()`` silently breaks byte-identical op counts
    across runs and machines.
    """

    rule_id = "JISC001"
    name = "determinism"
    description = (
        "no time.time/datetime.now/os.urandom/uuid4/secrets or module-level "
        "random.* in src/repro; RNGs must be seeded random.Random instances"
    )

    #: Qualified calls that read wall clocks or entropy.
    BANNED_QUALIFIED = {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
        ("os", "urandom"),
        ("os", "getrandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
    }
    #: Names that may be imported from the ``random`` module.
    RANDOM_ALLOWED = {"Random"}
    #: From-imports of these (module, name) pairs are banned outright.
    BANNED_IMPORTS = {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "perf_counter"),
        ("os", "urandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
    }

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_engine

    def visit_Call(self, call: ast.Call, ctx: LintContext) -> None:
        chain = call_chain(call)
        if chain is None:
            return
        # module-level random.*: everything except the Random constructor.
        if chain[0] == "random" and len(chain) == 2:
            if chain[1] not in self.RANDOM_ALLOWED:
                ctx.report(
                    self.rule_id,
                    call,
                    f"module-level random.{chain[1]}() shares hidden global "
                    f"state; construct random.Random(seed) and thread it as "
                    f"a parameter (DESIGN.md substitution table)",
                )
            return
        tail = chain[-2:]
        if tail in self.BANNED_QUALIFIED or (
            len(chain) >= 2 and ("secrets" in chain[:-1])
        ):
            ctx.report(
                self.rule_id,
                call,
                f"{'.'.join(chain)}() is nondeterministic; the engine runs "
                f"on the virtual clock / seeded RNGs only",
            )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: LintContext) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in self.RANDOM_ALLOWED:
                    ctx.report(
                        self.rule_id,
                        node,
                        f"from random import {alias.name}: only the Random "
                        f"class may be imported; module-level functions share "
                        f"hidden global state",
                    )
        elif node.module in ("time", "os", "uuid", "secrets"):
            for alias in node.names:
                if (node.module, alias.name) in self.BANNED_IMPORTS or (
                    node.module == "secrets"
                ):
                    ctx.report(
                        self.rule_id,
                        node,
                        f"from {node.module} import {alias.name} is "
                        f"nondeterministic; the engine runs on the virtual "
                        f"clock / seeded RNGs only",
                    )

    def visit_Import(self, node: ast.Import, ctx: LintContext) -> None:
        for alias in node.names:
            if alias.name == "secrets":
                ctx.report(
                    self.rule_id, node, "the secrets module is entropy by design"
                )


# ---------------------------------------------------------------------------
# JISC002 — tracer purity


@register
class TracerPurityRule(Rule):
    """Tracer hook results must never feed engine logic.

    PR 1's zero-perturbation guarantee — identical op counts with and
    without a RecordingTracer attached — holds only while the engine
    treats every tracer hook as write-only.  A hook return value used in
    an assignment, condition, or argument is a covert channel from
    observation back into execution.  ``set_phase`` (returns the previous
    phase for restore) and ``attach`` (returns the target for chaining)
    are the sanctioned exceptions.
    """

    rule_id = "JISC002"
    name = "tracer-purity"
    description = (
        "tracer hook return values may not feed assignments, conditions, or "
        "arguments (set_phase/attach excepted)"
    )

    HOOKS = {
        "on_count",
        "arrival",
        "output",
        "transition_start",
        "transition_end",
        "migration_end",
        "completion",
        "promote",
        "demote",
        "checkpoint",
        "note",
        "fault",
        "recovery",
        "rebalance_start",
        "rebalance_end",
        "shard_move",
    }
    EXEMPT = {"set_phase", "attach"}
    #: Receiver names that identify a tracer object.
    RECEIVERS = {"tracer", "NULL_TRACER", "_tracer"}

    def applies_to(self, ctx: LintContext) -> bool:
        # The tracer implementation itself (and its reporting CLI) may of
        # course consume its own data structures.
        return ctx.in_engine and not (
            ctx.module_path or ""
        ).startswith("repro/obs/")

    def visit_Call(self, call: ast.Call, ctx: LintContext) -> None:
        chain = call_chain(call)
        if chain is None or len(chain) < 2:
            return
        method, receiver = chain[-1], chain[-2]
        if receiver not in self.RECEIVERS:
            return
        if method in self.EXEMPT:
            return
        if method in self.HOOKS and not is_statement_call(call, ctx):
            ctx.report(
                self.rule_id,
                call,
                f"return value of tracer hook {method}() feeds engine logic; "
                f"tracing must be write-only or the zero-perturbation "
                f"guarantee (docs/OBSERVABILITY.md) is void",
            )


# ---------------------------------------------------------------------------
# JISC003 — phase attribution


@register
class PhaseAttributionRule(Rule):
    """All op counting goes through the phase-attributed Metrics API.

    The tracer splits ``Metrics.counts`` into per-phase maps that must
    sum exactly to the totals; a direct ``metrics.counts[...]`` mutation
    bypasses ``count``/``count_n`` and silently breaks both the
    sum-to-total invariant and the virtual clock.
    """

    rule_id = "JISC003"
    name = "phase-attribution"
    description = (
        "no direct Metrics.counts mutation outside engine/metrics.py; use "
        "count()/count_n()"
    )

    MUTATORS = {"clear", "update", "setdefault", "pop", "popitem", "__setitem__"}

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_engine and ctx.module_path != "repro/engine/metrics.py"

    @staticmethod
    def _is_metrics_counts(node: ast.AST) -> bool:
        """True for ``metrics.counts`` / ``<x>.metrics.counts`` chains."""
        chain = dotted_chain(node)
        if chain is None or len(chain) < 2 or chain[-1] != "counts":
            return False
        return chain[-2] == "metrics" or chain[0] == "metrics"

    def _flag(self, node: ast.AST, ctx: LintContext) -> None:
        ctx.report(
            self.rule_id,
            node,
            "direct Metrics.counts mutation bypasses phase attribution and "
            "the virtual clock; use metrics.count()/count_n()",
        )

    def visit_Subscript(self, node: ast.Subscript, ctx: LintContext) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and self._is_metrics_counts(
            node.value
        ):
            self._flag(node, ctx)

    def visit_Call(self, call: ast.Call, ctx: LintContext) -> None:
        chain = call_chain(call)
        if (
            chain is not None
            and len(chain) >= 3
            and chain[-1] in self.MUTATORS
            and chain[-2] == "counts"
            and (chain[-3] == "metrics" or chain[0] == "metrics")
        ):
            self._flag(call, ctx)


# ---------------------------------------------------------------------------
# JISC004 — state-access discipline


@register
class StateDisciplineRule(Rule):
    """HashState mutation and StateStatus transitions only from sanctioned
    modules.

    The lazy-completion invariant of PAPER.md §4.3 — every probe of an
    incomplete state passes the controller's completion hook first —
    survives only while states are mutated from the operator pipeline and
    the JISC controller.  Megaphone-style erosion (PAPERS.md) starts the
    day a utility module inserts into a state behind the controller's
    back.  Out-of-band sites (checkpoint restore, Moving State's eager
    rebuild) must carry an explicit per-line suppression, which keeps
    them enumerable.
    """

    rule_id = "JISC004"
    name = "state-discipline"
    description = (
        "HashState mutators and StateStatus transitions only from "
        "operators/, core/, eddy/stem.py, and shard/rebalance.py; "
        "coordinator-driven evictions (evict/window.discard) only from "
        "operators/, eddy/, streams/, and shard/; everything else needs "
        "an explicit suppression"
    )

    STATE_MUTATORS = {"add", "remove_entry", "remove_with_part", "clear", "copy_from"}
    STATUS_TRANSITIONS = {
        "mark_complete",
        "mark_incomplete",
        "settle_value",
        "retire_value",
    }
    #: Out-of-band eviction entry points (docs/SHARDING.md): ``evict`` on
    #: scans/SteMs/workers and ``discard`` on windows remove specific
    #: tuples outside the normal push-eviction path.  They exist solely so
    #: the shard coordinator can drive *global*-window evictions into
    #: per-worker state; anywhere else they silently desynchronize a
    #: window from the states derived from it.
    EVICTION_MUTATORS = {"evict", "discard"}
    #: Module prefixes (repro-relative) allowed to touch state directly:
    #: the operator pipeline, the JISC controller/transition machinery,
    #: the eddy's STEMs (per-stream operators that own their state), and
    #: the shard rebalance bookkeeping (reuses StateStatus for per-key
    #: move tracking, PAPER.md §4.3 applied to cross-shard moves).
    ALLOWED = (
        "repro/operators/",
        "repro/core/",
        "repro/eddy/stem.py",
        "repro/shard/rebalance.py",
    )
    #: Module prefixes allowed to call the eviction entry points: the
    #: structures that define them, plus the shard layer (the coordinator
    #: and its worker adapters are the intended caller).
    EVICTION_ALLOWED = (
        "repro/operators/",
        "repro/eddy/",
        "repro/streams/",
        "repro/shard/",
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_engine

    @staticmethod
    def _outside(ctx: LintContext, prefixes: Tuple[str, ...]) -> bool:
        mp = ctx.module_path or ""
        return not any(mp.startswith(p) for p in prefixes)

    def visit_Call(self, call: ast.Call, ctx: LintContext) -> None:
        chain = call_chain(call)
        if chain is None or len(chain) < 2:
            return
        method, receiver = chain[-1], chain[-2]
        if (
            method in self.STATE_MUTATORS
            and (receiver == "state" or receiver.endswith("_state"))
            and self._outside(ctx, self.ALLOWED)
        ):
            ctx.report(
                self.rule_id,
                call,
                f"HashState.{method}() outside the operator/controller "
                f"pipeline bypasses the completion hooks that keep states "
                f"complete/closed/duplicate-free (PAPER.md §4.3)",
            )
        elif (
            method in self.STATUS_TRANSITIONS
            and receiver == "status"
            and self._outside(ctx, self.ALLOWED)
        ):
            ctx.report(
                self.rule_id,
                call,
                f"StateStatus.{method}() outside the operator/controller "
                f"pipeline can desynchronize the pending-value counter from "
                f"the state contents (PAPER.md §4.3)",
            )
        elif method in self.EVICTION_MUTATORS and self._outside(
            ctx, self.EVICTION_ALLOWED
        ):
            if method == "discard" and not (
                receiver == "window" or receiver.endswith("_window")
            ):
                return
            ctx.report(
                self.rule_id,
                call,
                f"{method}() is a coordinator-driven eviction entry point "
                f"(docs/SHARDING.md); calling it outside the shard layer "
                f"desynchronizes windows from derived state",
            )


# ---------------------------------------------------------------------------
# JISC005 — queue discipline


@register
class QueueDisciplineRule(Rule):
    """Operators never push into another operator's ``process`` directly.

    Section 4.1's safe transition depends on every inter-operator hop
    being observable by the scheduler (buffer-clearing phase); a direct
    ``other.process(tup, child)`` call is an invisible hop that a drain
    cannot flush.  The only sanctioned call sites are ``Operator.emit``
    (which falls back to a synchronous push when no scheduler is wired)
    and ``QueueScheduler.drain``.
    """

    rule_id = "JISC005"
    name = "queue-discipline"
    description = (
        "no direct operator-to-operator process(tup, child) calls outside "
        "operators/base.py and engine/queued.py; emit via the scheduler"
    )

    #: Operator.process has exactly two positional parameters (tup, child);
    #: strategy/executor .process(tup) takes one and is not covered here.
    ALLOWED = ("repro/operators/base.py", "repro/engine/queued.py")

    def applies_to(self, ctx: LintContext) -> bool:
        mp = ctx.module_path or ""
        return ctx.in_engine and mp not in self.ALLOWED

    def visit_Call(self, call: ast.Call, ctx: LintContext) -> None:
        if not isinstance(call.func, ast.Attribute) or call.func.attr != "process":
            return
        if len(call.args) != 2 or call.keywords:
            return
        ctx.report(
            self.rule_id,
            call,
            "direct operator process(tup, child) push is invisible to the "
            "scheduler and breaks the buffer-clearing phase (§4.1); route "
            "through Operator.emit / QueueScheduler",
        )


# ---------------------------------------------------------------------------
# JISC006 — hygiene


@register
class HygieneRule(Rule):
    """Bare excepts, mutable default arguments, runtime asserts.

    ``assert`` statements vanish under ``python -O``, so an invariant
    check that must hold in production has to raise explicitly; bare
    ``except:`` swallows KeyboardInterrupt/SystemExit; mutable defaults
    are shared across calls and have corrupted more streaming state
    machines than any other Python footgun.
    """

    rule_id = "JISC006"
    name = "hygiene"
    description = (
        "no bare except or mutable default arguments anywhere; no runtime "
        "assert under src/repro (stripped by python -O)"
    )

    MUTABLE_DEFAULT_CALLS = {"list", "dict", "set", "deque", "defaultdict"}

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx: LintContext) -> None:
        if node.type is None:
            ctx.report(
                self.rule_id,
                node,
                "bare except swallows KeyboardInterrupt/SystemExit; catch "
                "Exception (or narrower) instead",
            )

    def visit_Assert(self, node: ast.Assert, ctx: LintContext) -> None:
        if ctx.in_engine:
            ctx.report(
                self.rule_id,
                node,
                "runtime assert in engine code is stripped under python -O; "
                "raise ValueError/RuntimeError explicitly",
            )

    def _check_defaults(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef], ctx: LintContext
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                       ast.DictComp, ast.SetComp))
            if not bad and isinstance(default, ast.Call):
                chain = call_chain(default)
                bad = chain is not None and chain[-1] in self.MUTABLE_DEFAULT_CALLS
            if bad:
                ctx.report(
                    self.rule_id,
                    default,
                    f"mutable default argument in {node.name}() is shared "
                    f"across calls; default to None and construct inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: LintContext) -> None:
        self._check_defaults(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: LintContext
    ) -> None:
        self._check_defaults(node, ctx)


# ---------------------------------------------------------------------------
# JISC007 — telemetry registration discipline


@register
class TelemetryRegistrationRule(Rule):
    """Telemetry instruments are registered at init time, not per tuple.

    The telemetry overhead budget (docs/TELEMETRY.md, < 5% wall-clock)
    holds because the hot path touches pre-resolved instrument objects —
    plain attribute increments.  A ``registry.counter(...)`` call *is*
    get-or-create: it formats and hashes the label set on every call, so
    one factory call inside ``arrival()`` or a per-tuple loop silently
    turns O(1) increments into O(label-set) dictionary work and blows the
    budget the perf gate certifies.  Factories therefore may only be
    called from init-like code: module scope, ``__init__``/``attach``,
    or functions whose name says they register/wire/init something.
    """

    rule_id = "JISC007"
    name = "telemetry-registration"
    description = (
        "registry instrument factories (counter/gauge/histogram/windowed) "
        "may only be called from init-like functions (__init__, attach, "
        "*register*/*wire*/*init*) or module scope, never on hot paths"
    )

    #: The MetricsRegistry get-or-create factory methods.
    FACTORIES = {"counter", "gauge", "histogram", "windowed"}
    #: Receiver names that identify a registry object.
    RECEIVERS = {"registry", "_registry", "reg"}
    #: Exact function names that count as init-time.
    INIT_EXACT = {"__init__", "__post_init__", "attach"}
    #: Substrings that mark a function as registration/wiring code.
    INIT_MARKERS = ("register", "wire", "init", "setup", "instrument")

    def applies_to(self, ctx: LintContext) -> bool:
        # The registry implements the factories; it may call its own.
        return ctx.in_engine and ctx.module_path != "repro/telemetry/registry.py"

    @classmethod
    def _init_like(cls, name: str) -> bool:
        return name in cls.INIT_EXACT or any(m in name for m in cls.INIT_MARKERS)

    @staticmethod
    def _enclosing_function(
        node: ast.AST, ctx: LintContext
    ) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
        cur = ctx.parent(node)
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            cur = ctx.parent(cur)
        return cur

    def visit_Call(self, call: ast.Call, ctx: LintContext) -> None:
        chain = call_chain(call)
        if chain is None or len(chain) < 2:
            return
        if chain[-1] not in self.FACTORIES or chain[-2] not in self.RECEIVERS:
            return
        fn = self._enclosing_function(call, ctx)
        if fn is None or self._init_like(fn.name):
            return
        ctx.report(
            self.rule_id,
            call,
            f"registry.{chain[-1]}() inside {fn.name}() is get-or-create "
            f"label hashing on a non-init path; resolve the instrument once "
            f"at init/attach and increment the resolved object here "
            f"(docs/TELEMETRY.md, overhead budget)",
        )
