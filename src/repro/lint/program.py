"""Whole-program analysis driver: call graph -> phase typestate -> findings.

:func:`run_program_analysis` is invoked by :func:`repro.lint.core.lint_paths`
after the per-file rules.  It links every engine file of the run (files whose
:attr:`LintContext.module_path` is set and outside ``repro/lint``) into one
:class:`~repro.lint.callgraph.Project`, runs the phase-typestate verifier,
and reports violations through each file's :class:`LintContext` — so the
ordinary ``# jisclint: disable=JISC004`` suppression machinery (including
JISC000 unused-suppression tracking) applies to program findings exactly as
it does to per-file ones.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List, Optional, Sequence

from repro.lint.callgraph import Project, build_project
from repro.lint.core import LintContext
from repro.lint.typestate import PhaseProof, verify_phases

#: rule id program-level phase violations are reported under (they are the
#: interprocedural upgrade of the per-file state-discipline rule)
PHASE_RULE_ID = "JISC004"


def build_project_from_contexts(
    contexts: Sequence[LintContext], cache_path: Optional[str] = None
) -> Optional[Project]:
    """Link the engine files among ``contexts``; None when there are none.

    Duplicate module paths (e.g. a fixture copy of an engine file in a
    temporary directory linted alongside the real tree) keep the first
    occurrence only — mixing two definitions of one module would conflate
    their call graphs.
    """
    by_module: Dict[str, LintContext] = {}
    for ctx in contexts:
        if ctx.module_path is None or not ctx.in_engine:
            continue
        by_module.setdefault(ctx.module_path, ctx)
    if not by_module:
        return None
    sources = [
        (ctx.path, module_path, ctx.tree, ctx.source)
        for module_path, ctx in sorted(by_module.items())
    ]
    return build_project(sources, cache_path=cache_path)


def run_program_analysis(
    contexts: Sequence[LintContext], cache_path: Optional[str] = None
) -> Optional[PhaseProof]:
    """Verify phase typestate across ``contexts``; report into them."""
    by_module: Dict[str, List[LintContext]] = {}
    for ctx in contexts:
        if ctx.module_path is not None and ctx.in_engine:
            by_module.setdefault(ctx.module_path, []).append(ctx)
    project = build_project_from_contexts(contexts, cache_path=cache_path)
    if project is None:
        return None
    proof = verify_phases(project)
    for violation in proof.violations:
        targets = by_module.get(violation.path)
        if not targets:
            continue
        loc = SimpleNamespace(lineno=violation.line, col_offset=0)
        targets[0].report(PHASE_RULE_ID, loc, violation.message)
    return proof
