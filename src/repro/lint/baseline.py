"""Baseline files: adopt jisclint on a dirty tree without losing the gate.

A baseline is a JSON multiset of *accepted* findings keyed by
``(rule, path, message)`` — deliberately not by line, so unrelated edits
that shift a legacy finding up or down do not break CI.  ``--baseline``
subtracts the baseline from the current findings: only *new* findings
fail the run (exit 1), and baseline entries that no longer match anything
are reported so the file shrinks monotonically toward empty.

Two guard rails keep the baseline from becoming a dumping ground:

* entries under ``repro/migration`` or ``repro/shard`` are refused outright
  (config error, exit 2) — the migration and sharding layers implement the
  paper's correctness-critical protocols and must stay finding-free, not
  grandfathered;
* an entry may only *reduce* findings; a stale entry (count larger than
  reality) surfaces in :attr:`BaselineResult.stale`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.lint.core import Finding

BASELINE_FORMAT_VERSION = 1

#: module-path prefixes that may never be baselined (correctness-critical
#: protocol layers; findings there must be fixed, not accepted).
PROTECTED_PREFIXES = ("repro/migration/", "repro/shard/")


class BaselineError(ValueError):
    """Malformed or policy-violating baseline file (CLI exit code 2)."""


BaselineKey = Tuple[str, str, str]  # (rule, normalized path, message)


def _key(rule: str, path: str, message: str) -> BaselineKey:
    return (rule, path.replace("\\", "/"), message)


def finding_key(finding: Finding) -> BaselineKey:
    return _key(finding.rule_id, finding.path, finding.message)


def _is_protected(path: str) -> bool:
    norm = path.replace("\\", "/")
    return any(prefix in norm for prefix in PROTECTED_PREFIXES)


def load_baseline(path: str) -> Dict[BaselineKey, int]:
    """Parse and validate a baseline file; raises :class:`BaselineError`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_FORMAT_VERSION:
        raise BaselineError(
            f"baseline {path!r}: expected an object with version="
            f"{BASELINE_FORMAT_VERSION}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path!r}: 'entries' must be a list")
    out: Dict[BaselineKey, int] = {}
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline {path!r}: entry {i} is not an object")
        try:
            rule = entry["rule"]
            epath = entry["path"]
            message = entry["message"]
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path!r}: entry {i} is missing {exc}"
            ) from exc
        count = entry.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise BaselineError(
                f"baseline {path!r}: entry {i} has invalid count {count!r}"
            )
        if _is_protected(epath):
            raise BaselineError(
                f"baseline {path!r}: entry {i} ({rule} in {epath}) is under a "
                f"protected tree ({', '.join(PROTECTED_PREFIXES)}); findings "
                f"in the migration/sharding protocol layers must be fixed, "
                f"not baselined"
            )
        key = _key(rule, epath, message)
        out[key] = out.get(key, 0) + count
    return out


class BaselineResult:
    """Outcome of applying a baseline to a finding list."""

    __slots__ = ("new", "accepted", "stale")

    def __init__(
        self,
        new: List[Finding],
        accepted: List[Finding],
        stale: List[BaselineKey],
    ):
        self.new = new  # findings NOT covered by the baseline (fail the run)
        self.accepted = accepted  # findings the baseline absorbed
        self.stale = stale  # baseline keys with leftover counts (prune them)


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[BaselineKey, int]
) -> BaselineResult:
    """Split ``findings`` into new vs accepted; report stale entries."""
    remaining = dict(baseline)
    new: List[Finding] = []
    accepted: List[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            accepted.append(finding)
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return BaselineResult(new, accepted, stale)


def render_baseline(findings: Sequence[Finding]) -> str:
    """Serialize ``findings`` as a baseline file (``--write-baseline``).

    Refuses findings under the protected trees for the same reason
    :func:`load_baseline` does.
    """
    protected = [f for f in findings if _is_protected(f.path)]
    if protected:
        first = protected[0]
        raise BaselineError(
            f"refusing to baseline {len(protected)} finding(s) under "
            f"protected trees (first: {first.rule_id} in {first.path}); fix "
            f"them instead"
        )
    counts: Dict[BaselineKey, int] = {}
    for finding in findings:
        key = finding_key(finding)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"rule": rule, "path": path, "message": message, "count": count}
        for (rule, path, message), count in sorted(counts.items())
    ]
    payload = {
        "version": BASELINE_FORMAT_VERSION,
        "tool": "jisclint",
        "entries": entries,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
