"""Dataflow-backed rules: JISC008 (determinism taint), JISC009 (exactly-once
WAL discipline), JISC010 (span/session handle typestate).

These rules run per file like every other rule, but internally build
control-flow graphs (:mod:`repro.lint.cfg`) and run the forward solver
(:mod:`repro.lint.dataflow`), so they reason about *flows*, not patterns:

* JISC008 tracks values derived from unordered iteration (``set`` iteration,
  ``id()``) through assignments, calls and containers, and flags them when
  they reach an order-sensitive effect — an emitted tuple, a state mutation,
  a WAL append — without passing an ordering barrier (``sorted``/``min``/
  ``max``/aggregation).  ``dict`` iteration is *not* a source: CPython dicts
  are insertion-ordered, and the engine's dict insertion orders are
  plan-derived and deterministic; nondeterminism enters through sets (hash
  order depends on PYTHONHASHSEED and object ids) and through ``id()``.
  Order-insensitive uses of unordered values stay legal: membership tests,
  ``set.add``, dict/set stores, counters.
* JISC009 builds the intraclass call graph of every class that appends to a
  write-ahead log on an arrival path (``run``/``offer``/``process``/``feed``)
  and demands (a) a replay path — a ``*recover*``/``*replay*`` method reading
  the log — and (b) a dedupe check guarding every delivery call reachable
  from that replay path (membership on a ``seen``/``delivered``/``cursor``
  structure, or delegation to a muted ``replay`` primitive).
* JISC010 runs a may-be-open analysis over the CFG: every
  ``prev = tracer.set_phase(PHASE_X)`` span must be restored on all paths to
  the normal exit (``finally`` satisfies this; the guarded
  ``if prev is not None: tracer.set_phase(prev)`` idiom is recognized), a
  ``set_phase(PHASE_X)`` whose previous phase is discarded is flagged
  outright, and a locally constructed ``RebalanceSession`` must escape
  (be stored, returned, or handed off) rather than dropped.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.lint.callgraph import PHASE_CONSTANTS, annotation_head
from repro.lint.cfg import CFG, build_cfg
from repro.lint.core import LintContext, Rule, register
from repro.lint.dataflow import ForwardAnalysis, assigned_names, solve
from repro.lint.rules import call_chain, dotted_chain

# ---------------------------------------------------------------------------
# JISC008 — determinism taint
# ---------------------------------------------------------------------------

#: calls whose result is ordering-clean regardless of argument taint
BARRIERS = {
    "sorted",
    "min",
    "max",
    "sum",
    "len",
    "any",
    "all",
    "bool",
    "abs",
    "hash",
    "repr",
    "str",
    "int",
    "float",
    "set",
    "frozenset",
    "dict",
    "Counter",
}

#: sequence constructors that preserve their argument's iteration order
ORDER_PRESERVING = {"list", "tuple", "iter", "reversed", "enumerate"}

#: methods known to return sets (iteration order is hash order)
SET_RETURNING_METHODS = {"distinct_values"}

#: order-sensitive effects: emitting, state mutation, WAL/delivery appends,
#: pipeline feeds, and completion-counter transitions
SINK_METHODS = {
    "emit",
    "emit_removal",
    "add",
    "insert",
    "remove_entry",
    "remove_with_part",
    "append_log",
    "append_delivered",
    "feed",
    "process",
    "settle_value",
    "retire_value",
    "mark_complete",
    "mark_incomplete",
    "_mark_complete",
    "_notify_parent",
    "settle",
    "retire",
}

_SET_HEADS = {"Set", "set", "FrozenSet", "frozenset", "MutableSet", "AbstractSet"}

_SERIALIZER_MARKERS = ("checkpoint", "to_json", "serialize")


def _ann_is_set(ann: Optional[str]) -> bool:
    head = annotation_head(ann)
    return head in _SET_HEADS if head else False


def _dict_value_ann(ann: Optional[str]) -> Optional[str]:
    """Value annotation of ``Dict[K, V]`` / ``Mapping[K, V]``, else None."""
    if not ann:
        return None
    ann = ann.strip().strip("\"'")
    if ann.startswith("Optional[") and ann.endswith("]"):
        ann = ann[len("Optional[") : -1]
    head, _, rest = ann.partition("[")
    if head.strip() not in {"Dict", "dict", "Mapping", "MutableMapping", "DefaultDict"}:
        return None
    if not rest.endswith("]"):
        return None
    inner = rest[:-1]
    depth = 0
    for i, ch in enumerate(inner):
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            return inner[i + 1 :].strip()
    return None


class _SetTypes:
    """Flow-insensitive 'is this name/attr a set?' facts for one function."""

    def __init__(self, func: ast.AST, class_attr_anns: Mapping[str, str]):
        self.names: Set[str] = set()
        self.attr_anns = class_attr_anns  # "attr" -> raw annotation
        args = func.args  # type: ignore[attr-defined]
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None and _ann_is_set(ast.unparse(arg.annotation)):
                self.names.add(arg.arg)
        for sub in ast.walk(func):
            if isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                if _ann_is_set(ast.unparse(sub.annotation)):
                    self.names.add(sub.target.id)
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name) and self.is_set_expr(sub.value):
                    self.names.add(target.id)

    def is_set_expr(self, expr: ast.expr) -> bool:
        """Syntactic/type evidence that ``expr`` evaluates to a set."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.names
        if isinstance(expr, ast.Attribute):
            chain = dotted_chain(expr)
            if chain and chain[0] == "self" and len(chain) == 2:
                return _ann_is_set(self.attr_anns.get(chain[1]))
            return False
        if isinstance(expr, ast.Call):
            chain = call_chain(expr)
            if chain is None:
                return False
            if chain[-1] in {"set", "frozenset"}:
                return True
            if chain[-1] in SET_RETURNING_METHODS:
                return True
            # ``self._suppressed_by.pop(part, set())`` — a dict whose values
            # are sets hands out a set.
            if chain[-1] in {"pop", "get"} and len(chain) == 3 and chain[0] == "self":
                value_ann = _dict_value_ann(self.attr_anns.get(chain[1]))
                return _ann_is_set(value_ann)
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(expr.left) or self.is_set_expr(expr.right)
        return False


TaintState = Mapping[str, str]  # pseudo-var -> reason it is order-tainted


class _TaintAnalysis(ForwardAnalysis[TaintState]):
    def __init__(self, types: _SetTypes):
        self.types = types

    def initial(self) -> TaintState:
        return {}

    def bottom(self) -> TaintState:
        return {}

    def join(self, a: TaintState, b: TaintState) -> TaintState:
        if not a:
            return b
        if not b:
            return a
        merged = dict(a)
        for name, reason in b.items():
            merged.setdefault(name, reason)
        return merged

    # -- expression taint --------------------------------------------------

    def expr_taint(self, expr: ast.expr, env: TaintState) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            chain = dotted_chain(expr)
            if chain is not None:
                if chain[0] in env:
                    return env[chain[0]]
                if ".".join(chain[:2]) in env:
                    return env[".".join(chain[:2])]
            return None
        if isinstance(expr, ast.Call):
            return self._call_taint(expr, env)
        if isinstance(expr, ast.IfExp):
            return self.expr_taint(expr.body, env) or self.expr_taint(expr.orelse, env)
        if isinstance(expr, ast.BinOp):
            return self.expr_taint(expr.left, env) or self.expr_taint(expr.right, env)
        if isinstance(expr, (ast.Compare, ast.BoolOp)):
            return None  # booleans are order-insensitive
        if isinstance(expr, ast.Subscript):
            return self.expr_taint(expr.value, env)
        if isinstance(expr, ast.Starred):
            return self.expr_taint(expr.value, env)
        if isinstance(expr, (ast.Tuple, ast.List)):
            for elt in expr.elts:
                taint = self.expr_taint(elt, env)
                if taint:
                    return taint
            return None
        if isinstance(expr, (ast.Set, ast.SetComp, ast.DictComp, ast.Dict)):
            return None  # content-addressed containers erase ordering
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            for gen in expr.generators:
                if self.iter_taint(gen.iter, env):
                    return self.iter_taint(gen.iter, env)
            return self.expr_taint(expr.elt, env)
        return None

    def _call_taint(self, call: ast.Call, env: TaintState) -> Optional[str]:
        chain = call_chain(call)
        name = chain[-1] if chain else None
        if name == "id" and chain is not None and len(chain) == 1:
            return "id() value"
        if name in BARRIERS and chain is not None and len(chain) == 1:
            return None
        if name in ORDER_PRESERVING and chain is not None and len(chain) == 1:
            # list(s)/tuple(s) keep s's (possibly unordered) element order.
            for arg in call.args:
                taint = self.iter_taint(arg, env)
                if taint:
                    return taint
            return None
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            taint = self.expr_taint(arg, env)
            if taint:
                return taint
        # A method called *on* a tainted object yields tainted data.
        if chain is not None and chain[0] in env:
            return env[chain[0]]
        return None

    def iter_taint(self, iterable: ast.expr, env: TaintState) -> Optional[str]:
        """Reason iterating ``iterable`` yields order-tainted values."""
        if self.types.is_set_expr(iterable):
            return "unordered set iteration"
        return self.expr_taint(iterable, env)

    # -- transfer ----------------------------------------------------------

    def transfer(self, stmt: ast.stmt, state: TaintState) -> TaintState:
        updated: Optional[Dict[str, str]] = None

        def set_names(targets: Tuple[str, ...], reason: Optional[str]) -> None:
            nonlocal updated
            if updated is None:
                updated = dict(state)
            for name in targets:
                if reason:
                    updated[name] = reason
                else:
                    updated.pop(name, None)

        if isinstance(stmt, ast.Assign):
            taint = self.expr_taint(stmt.value, state)
            for target in stmt.targets:
                set_names(assigned_names(target), taint)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            set_names(assigned_names(stmt.target), self.expr_taint(stmt.value, state))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.expr_taint(stmt.value, state)
            if taint:
                set_names(assigned_names(stmt.target), taint)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            set_names(assigned_names(stmt.target), self.iter_taint(stmt.iter, state))
        return updated if updated is not None else state


@register
class DeterminismTaintRule(Rule):
    """Unordered-iteration values must not reach order-sensitive effects.

    A join result emitted per set element, a state entry removed in set
    order, a WAL record appended per ``id()``-keyed visit: each reproduces
    differently across processes (set order varies with PYTHONHASHSEED and
    object addresses), silently breaking the byte-identical op-count and
    output-lineage guarantees the reproduction is built on.  Route the
    iteration through ``sorted(...)`` (lid/part tuples compare fine) or keep
    the effect order-insensitive (sets, dicts, counters, membership).
    """

    rule_id = "JISC008"
    name = "determinism-taint"
    description = (
        "values from set iteration or id() must not flow into emit/state "
        "mutation/WAL appends/serialized payloads without an ordering "
        "barrier (sorted/min/max/aggregation)"
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_engine

    def begin_file(self, ctx: LintContext) -> None:
        self._class_attr_anns: Dict[str, Dict[str, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._class_attr_anns[node.name] = self._collect_attr_anns(node)

    @staticmethod
    def _collect_attr_anns(cls: ast.ClassDef) -> Dict[str, str]:
        anns: Dict[str, str] = {}
        for sub in ast.walk(cls):
            if isinstance(sub, ast.AnnAssign):
                target = sub.target
                if isinstance(target, ast.Name):
                    anns.setdefault(target.id, ast.unparse(sub.annotation))
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    anns.setdefault(target.attr, ast.unparse(sub.annotation))
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(sub.value, (ast.Set, ast.SetComp))
                ):
                    anns.setdefault(target.attr, "Set[Any]")
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(sub.value, ast.Call)
                    and isinstance(sub.value.func, ast.Name)
                    and sub.value.func.id in {"set", "frozenset"}
                ):
                    anns.setdefault(target.attr, "Set[Any]")
        return anns

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: LintContext) -> None:
        self._check_function(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AST, ctx: LintContext) -> None:
        self._check_function(node, ctx)

    # -- the per-function analysis ----------------------------------------

    def _enclosing_class(self, node: ast.AST, ctx: LintContext) -> Optional[str]:
        parent = ctx.parent(node)
        while parent is not None:
            if isinstance(parent, ast.ClassDef):
                return parent.name
            parent = ctx.parent(parent)
        return None

    def _check_function(self, func: ast.AST, ctx: LintContext) -> None:
        cls_name = self._enclosing_class(func, ctx)
        attr_anns = self._class_attr_anns.get(cls_name or "", {})
        types = _SetTypes(func, attr_anns)
        analysis = _TaintAnalysis(types)
        cfg = build_cfg(func)
        block_in, _ = solve(cfg, analysis)
        is_serializer = any(
            marker in func.name for marker in _SERIALIZER_MARKERS  # type: ignore[attr-defined]
        )
        for bid, block in cfg.blocks.items():
            env: TaintState = block_in[bid]
            for stmt in block.stmts:
                self._check_stmt(stmt, env, analysis, ctx, is_serializer)
                env = analysis.transfer(stmt, env)

    def _check_stmt(
        self,
        stmt: ast.stmt,
        env: TaintState,
        analysis: _TaintAnalysis,
        ctx: LintContext,
        is_serializer: bool,
    ) -> None:
        # Only inspect the statement's own expressions, not nested
        # statements (those live in their own blocks with their own env).
        exprs: List[ast.expr] = []
        if isinstance(stmt, ast.Expr):
            exprs.append(stmt.value)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if stmt.value is not None:
                exprs.append(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and is_serializer:
                taint = analysis.expr_taint(stmt.value, env)
                if taint:
                    ctx.report(
                        self.rule_id,
                        stmt,
                        f"serialized payload depends on {taint}: checkpoint/"
                        f"report bytes would vary across runs; apply sorted() "
                        f"or serialize an order-insensitive form",
                    )
            if stmt.value is not None:
                exprs.append(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            exprs.append(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            exprs.append(stmt.iter)
        for expr in exprs:
            for call in [n for n in ast.walk(expr) if isinstance(n, ast.Call)]:
                self._check_call(call, env, analysis, ctx)

    def _check_call(
        self,
        call: ast.Call,
        env: TaintState,
        analysis: _TaintAnalysis,
        ctx: LintContext,
    ) -> None:
        chain = call_chain(call)
        if chain is None:
            return
        name = chain[-1]
        if name == "dumps" and len(chain) == 2 and chain[0] == "json":
            for arg in call.args:
                taint = analysis.expr_taint(arg, env)
                if taint:
                    ctx.report(
                        self.rule_id,
                        call,
                        f"json payload depends on {taint}; sort before "
                        f"serializing",
                    )
                    return
            return
        if name not in SINK_METHODS:
            return
        # set.add / set.discard accumulation is order-insensitive by
        # construction — never a sink.
        if name == "add" and len(chain) >= 2:
            recv = ast.unparse(call.func.value) if isinstance(call.func, ast.Attribute) else ""
            if chain[0] in analysis.types.names or (
                chain[0] == "self"
                and len(chain) == 3
                and _ann_is_set(analysis.types.attr_anns.get(chain[1]))
            ):
                return
            del recv
        # Receiver derived from unordered iteration: mutating it happens in
        # iteration order.
        if chain[0] in env:
            ctx.report(
                self.rule_id,
                call,
                f"order-sensitive call {'.'.join(chain)}() on a value from "
                f"{env[chain[0]]}; iterate sorted(...) instead",
            )
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            taint = analysis.expr_taint(arg, env)
            if taint:
                ctx.report(
                    self.rule_id,
                    call,
                    f"order-sensitive call {'.'.join(chain)}() receives a "
                    f"value from {taint}; iterate sorted(...) or make the "
                    f"effect order-insensitive",
                )
                return


# ---------------------------------------------------------------------------
# JISC009 — exactly-once WAL discipline
# ---------------------------------------------------------------------------

_ARRIVAL_METHODS = {"run", "offer", "process", "process_batch", "feed", "push", "transition"}
_DEDUPE_MARKERS = ("seen", "delivered", "dedup", "cursor", "applied")
_DELIVERY_METHODS = {"append_delivered", "emit", "deliver"}


#: attr-name fragments marking audit/telemetry trails rather than WALs —
#: these record *what happened* for inspection, are never replayed, and so
#: carry no exactly-once obligation.
_AUDIT_MARKERS = ("transition", "history", "audit", "trace", "event", "debug", "metric")


def _is_wal_name(name: str) -> bool:
    lowered = name.lower()
    if "log" not in lowered:
        return False
    return not any(marker in lowered for marker in _AUDIT_MARKERS)


def _name_mentions_log(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and _is_wal_name(node.attr):
            return True
        if isinstance(node, ast.Name) and _is_wal_name(node.id):
            return True
    return False


@register
class ExactlyOnceRule(Rule):
    """Every arrival-path WAL append needs a deduplicating replay path.

    The recovery contract (docs/FAULT_INJECTION.md, docs/SHARDING.md): an
    input is logged *before* it is processed, and replay after a crash must
    deliver each result exactly once — which requires (a) a replay path that
    reads the log at all, and (b) a dedupe check (delivered-set membership,
    merge cursor, or a muted replay primitive) between the log and any
    delivery on that path.  A WAL with no replay reader silently loses data;
    a replay path that re-emits without checking duplicates double-delivers.
    """

    rule_id = "JISC009"
    name = "exactly-once"
    description = (
        "classes appending to a WAL on an arrival path must have a replay "
        "path reading it, and replay-reachable deliveries must be guarded "
        "by a dedupe check"
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_engine

    def visit_ClassDef(self, node: ast.ClassDef, ctx: LintContext) -> None:
        methods: Dict[str, ast.AST] = {
            sub.name: sub
            for sub in node.body
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not methods:
            return
        calls: Dict[str, Set[str]] = {}  # method -> self.* methods it calls
        wal_sites: Dict[str, List[ast.Call]] = {}
        for name, fn in methods.items():
            own: Set[str] = set()
            for sub in ast.walk(fn):
                if not isinstance(sub, ast.Call):
                    continue
                chain = call_chain(sub)
                if chain and chain[0] == "self" and len(chain) == 2 and chain[1] in methods:
                    own.add(chain[1])
                if self._is_wal_append(sub):
                    wal_sites.setdefault(name, []).append(sub)
            calls[name] = own
        if not wal_sites:
            return

        def reachable(roots: Set[str]) -> Set[str]:
            seen: Set[str] = set()
            stack = [r for r in roots if r in methods]
            while stack:
                cur = stack.pop()
                if cur in seen:
                    continue
                seen.add(cur)
                stack.extend(calls.get(cur, ()))
            return seen

        arrival = reachable({m for m in methods if m in _ARRIVAL_METHODS})
        arrival_appends = [
            (m, site) for m, sites in wal_sites.items() if m in arrival for site in sites
        ]
        if not arrival_appends:
            return
        replay_roots = {
            m for m in methods if "recover" in m.lower() or "replay" in m.lower()
        }
        replay_reads = any(
            self._reads_log(methods[m]) for m in reachable(replay_roots)
        )
        if not replay_roots or not replay_reads:
            method, site = arrival_appends[0]
            ctx.report(
                self.rule_id,
                site,
                f"{node.name}.{method} appends to a write-ahead log on the "
                f"arrival path but the class has no replay path (a "
                f"*recover*/*replay* method reading the log); logged inputs "
                f"would be lost after a crash",
            )
            return
        # (b) deliveries on the replay path must be dedupe-guarded.
        replay_path = reachable(replay_roots)
        guarded = any(self._has_dedupe(methods[m]) for m in replay_path)
        for m in sorted(replay_path):
            for sub in ast.walk(methods[m]):
                if not isinstance(sub, ast.Call):
                    continue
                chain = call_chain(sub)
                if chain and chain[-1] in _DELIVERY_METHODS and not guarded:
                    ctx.report(
                        self.rule_id,
                        sub,
                        f"{node.name}.{m} delivers results on the replay "
                        f"path without a dedupe check (membership on a "
                        f"seen/delivered/cursor structure): crash-replay "
                        f"would double-deliver",
                    )
                    return

    @staticmethod
    def _is_wal_append(call: ast.Call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr == "append_log":
            return True
        if func.attr == "append" and _name_mentions_log(func.value):
            return True
        return False

    @staticmethod
    def _reads_log(fn: ast.AST) -> bool:
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Attribute) and "log" in sub.attr.lower():
                # any non-append access of a log attribute counts as a read
                return True
            if isinstance(sub, ast.Call):
                chain = call_chain(sub)
                if chain and any("log" in part.lower() for part in chain):
                    return True
        return False

    @staticmethod
    def _has_dedupe(fn: ast.AST) -> bool:
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in sub.ops
            ):
                for side in [sub.left] + list(sub.comparators):
                    for n in ast.walk(side):
                        attr = (
                            n.attr
                            if isinstance(n, ast.Attribute)
                            else n.id if isinstance(n, ast.Name) else ""
                        )
                        if any(mark in attr.lower() for mark in _DEDUPE_MARKERS):
                            return True
            elif isinstance(sub, ast.Call):
                chain = call_chain(sub)
                if chain and any(
                    "replay" in part.lower() or "cursor" in part.lower()
                    for part in chain
                ):
                    return True
        return False


# ---------------------------------------------------------------------------
# JISC010 — span / session handle typestate
# ---------------------------------------------------------------------------

HandleState = FrozenSet[str]  # names of may-open span handles


def _span_open_target(stmt: ast.stmt) -> Optional[Tuple[str, int]]:
    """(handle var, line) for ``prev = recv.set_phase(PHASE_X)`` assigns,
    including the guarded ``... if cond else None`` form."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    value = stmt.value
    if isinstance(value, ast.IfExp):
        for branch in (value.body, value.orelse):
            if isinstance(branch, ast.Call) and _is_phase_open(branch):
                return target.id, stmt.lineno
        return None
    if isinstance(value, ast.Call) and _is_phase_open(value):
        return target.id, stmt.lineno
    return None


def _is_phase_open(call: ast.Call) -> bool:
    chain = call_chain(call)
    if not chain or chain[-1] != "set_phase" or not call.args:
        return False
    arg0 = call.args[0]
    return isinstance(arg0, ast.Name) and arg0.id in PHASE_CONSTANTS


def _walk_closes(node: ast.AST) -> Set[str]:
    closed: Set[str] = set()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        chain = call_chain(sub)
        if not chain or chain[-1] != "set_phase" or not sub.args:
            continue
        arg0 = sub.args[0]
        if isinstance(arg0, ast.Name) and arg0.id not in PHASE_CONSTANTS:
            closed.add(arg0.id)
    return closed


def _restored_handles(stmt: ast.stmt) -> Set[str]:
    """Handle names closed by executing ``stmt`` at its CFG position.

    Compound statements appear twice in the CFG: once whole (as the branch
    header) and once as their lowered bodies, so a close buried in a branch
    must not kill at the header — unless the branch condition guards on the
    handle itself (``if prev is not None: tracer.set_phase(prev)``: the
    handle is definitely restored wherever it was actually opened).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        guard_names = {
            n.id for n in ast.walk(stmt.test) if isinstance(n, ast.Name)
        }
        return {h for h in _walk_closes(stmt) if h in guard_names}
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.With, ast.AsyncWith, ast.Try)):
        return set()  # body closes kill in their own blocks
    return _walk_closes(stmt)


class _SpanAnalysis(ForwardAnalysis[HandleState]):
    def __init__(self) -> None:
        self.open_lines: Dict[str, int] = {}

    def initial(self) -> HandleState:
        return frozenset()

    def bottom(self) -> HandleState:
        return frozenset()

    def join(self, a: HandleState, b: HandleState) -> HandleState:
        return a | b

    def transfer(self, stmt: ast.stmt, state: HandleState) -> HandleState:
        opened = _span_open_target(stmt)
        closed = _restored_handles(stmt)
        out = set(state)
        if opened is not None:
            out.add(opened[0])
            self.open_lines.setdefault(opened[0], opened[1])
        out -= closed
        return frozenset(out)


@register
class HandleTypestateRule(Rule):
    """Tracer spans and rebalance sessions must not leak.

    A ``set_phase(PHASE_X)`` without restoring the previous phase leaves
    every later counter attributed to the wrong phase — the per-phase cost
    accounting (Figures 7/8) silently corrupts.  The engine idiom is
    ``prev = tracer.set_phase(PHASE_X)`` ... ``finally: tracer.set_phase(prev)``
    (optionally guarded by ``if prev is not None``); this rule proves the
    restore happens on every path to the normal exit, flags opens that
    discard the previous phase, and requires locally constructed
    RebalanceSessions to escape (stored/returned/passed) so someone can
    drain them.
    """

    rule_id = "JISC010"
    name = "handle-typestate"
    description = (
        "phase spans must capture and restore the previous phase on all "
        "paths; RebalanceSessions must escape to an owner that drains them"
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_engine

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: LintContext) -> None:
        self._check_function(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AST, ctx: LintContext) -> None:
        self._check_function(node, ctx)

    def _check_function(self, func: ast.AST, ctx: LintContext) -> None:
        has_spans = False
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.stmt) and _span_open_target(stmt) is not None:
                has_spans = True
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                if _is_phase_open(stmt.value):
                    ctx.report(
                        self.rule_id,
                        stmt,
                        "set_phase() discards the previous phase; use "
                        "`prev = tracer.set_phase(PHASE_X)` and restore "
                        "`prev` in a finally block",
                    )
        if has_spans:
            cfg = build_cfg(func)
            analysis = _SpanAnalysis()
            _, block_out = solve(cfg, analysis)
            leaked: Set[str] = set()
            for pred in cfg.blocks[cfg.exit].preds:
                leaked |= block_out[pred]
            for name in sorted(leaked):
                line = analysis.open_lines.get(name, getattr(func, "lineno", 1))
                loc = ast.copy_location(ast.Pass(), func)
                loc.lineno = line  # type: ignore[attr-defined]
                ctx.report(
                    self.rule_id,
                    loc,
                    f"phase span handle '{name}' may still be open at "
                    f"function exit; restore it with set_phase({name}) in "
                    f"a finally block",
                )
        self._check_sessions(func, ctx)

    def _check_sessions(self, func: ast.AST, ctx: LintContext) -> None:
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            value = stmt.value
            if not (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "RebalanceSession"
            ):
                continue
            if not self._escapes(func, target.id, stmt):
                ctx.report(
                    self.rule_id,
                    stmt,
                    f"RebalanceSession bound to '{target.id}' never escapes "
                    f"this function (not stored, returned, or passed on): "
                    f"nobody can drain or settle it",
                )

    @staticmethod
    def _escapes(func: ast.AST, name: str, origin: ast.stmt) -> bool:
        for sub in ast.walk(func):
            if sub is origin:
                continue
            if isinstance(sub, ast.Assign):
                if any(
                    isinstance(t, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == name
                    for t in sub.targets
                ):
                    return True
            elif isinstance(sub, ast.Return):
                if isinstance(sub.value, ast.Name) and sub.value.id == name:
                    return True
            elif isinstance(sub, ast.Call):
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        return True
        return False
