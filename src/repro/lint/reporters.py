"""Finding renderers: human text and machine JSON.

Text findings are ``path:line:col: RULEID message`` — the format every
editor and CI annotator already knows how to hyperlink.  JSON output is
one object with a schema version, rule metadata, and the finding list,
so downstream tooling does not have to parse human strings.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.core import Finding, all_rules

JSON_FORMAT_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary tail line."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} {f.message}" for f in findings
    ]
    if findings:
        by_rule: Dict[str, int] = {}
        for f in findings:
            by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
        tally = ", ".join(f"{rid}: {n}" for rid, n in sorted(by_rule.items()))
        lines.append(f"jisclint: {len(findings)} finding(s) ({tally})")
    else:
        lines.append("jisclint: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    registry = all_rules()
    payload = {
        "version": JSON_FORMAT_VERSION,
        "tool": "jisclint",
        "rules": {
            rid: {"name": cls.name, "description": cls.description}
            for rid, cls in sorted(registry.items())
        },
        "findings": [f.to_json() for f in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 log for CI code-scanning upload (``--sarif``).

    One run, one driver (``jisclint``), every registered rule declared in
    the driver's rule table so scanners can show rule metadata even for
    rules with zero results this run.
    """
    registry = all_rules()
    rule_ids = sorted(registry)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    results = []
    for f in findings:
        results.append(
            {
                "ruleId": f.rule_id,
                "ruleIndex": rule_index.get(f.rule_id, -1),
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col,
                            },
                        }
                    }
                ],
            }
        )
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "jisclint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": [
                            {
                                "id": rid,
                                "name": registry[rid].name,
                                "shortDescription": {
                                    "text": registry[rid].description
                                },
                            }
                            for rid in rule_ids
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` table."""
    lines: List[str] = []
    for rid, cls in sorted(all_rules().items()):
        lines.append(f"{rid}  {cls.name}")
        lines.append(f"       {cls.description}")
    return "\n".join(lines)
