"""Generic forward dataflow solver over :mod:`repro.lint.cfg` graphs.

The solver is the classic worklist fixpoint: every block's *in* state is the
join of its predecessors' *out* states; *out* is obtained by running the
analysis' transfer function over the block's statements; blocks whose *out*
changed requeue their successors.  Termination relies on the analysis lattice
having finite height (all lattices used by jisclint are powersets over
program facts).

Two concrete analyses live here:

* :class:`ReachingDefinitions` — which assignments of each local name (and
  ``self.<attr>`` pseudo-name) may reach a program point.  ``self.attr``
  attributes are tracked as the pseudo-variable ``"self.attr"``; attribute
  writes through any *other* receiver conservatively clobber nothing (jisclint
  only reasons about may-alias through ``self``).
* Taint tracking for JISC008 lives in :mod:`repro.lint.flowrules`; it reuses
  :func:`solve` with a mapping-to-frozenset lattice.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Generic, Mapping, Tuple, TypeVar

from repro.lint.cfg import CFG

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Interface a forward analysis implements for :func:`solve`."""

    def initial(self) -> S:
        """State at function entry."""
        raise NotImplementedError

    def bottom(self) -> S:
        """Identity element for :meth:`join` (state of unreached blocks)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, stmt: ast.stmt, state: S) -> S:
        raise NotImplementedError


def solve(cfg: CFG, analysis: ForwardAnalysis[S]) -> Tuple[Dict[int, S], Dict[int, S]]:
    """Run ``analysis`` to fixpoint over ``cfg``.

    Returns ``(block_in, block_out)`` keyed by block id.  Blocks unreachable
    from the entry keep the analysis' bottom state.
    """
    block_in: Dict[int, S] = {bid: analysis.bottom() for bid in cfg.blocks}
    block_out: Dict[int, S] = {bid: analysis.bottom() for bid in cfg.blocks}
    block_in[cfg.entry] = analysis.initial()

    # Deterministic FIFO worklist seeded with *every* block (entry first):
    # seeding only the entry would strand blocks behind a chain whose
    # out-states never differ from bottom (identity transfers do not
    # requeue successors).
    worklist = [cfg.entry] + [bid for bid in sorted(cfg.blocks) if bid != cfg.entry]
    while worklist:
        bid = worklist.pop(0)
        block = cfg.blocks[bid]
        if block.preds:
            state = analysis.bottom()
            for pred in block.preds:
                state = analysis.join(state, block_out[pred])
            if bid == cfg.entry:
                state = analysis.join(state, analysis.initial())
            block_in[bid] = state
        state = block_in[bid]
        for stmt in block.stmts:
            state = analysis.transfer(stmt, state)
        if state != block_out[bid]:
            block_out[bid] = state
            for succ in block.succs:
                if succ not in worklist:
                    worklist.append(succ)
    return block_in, block_out


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------

#: Reaching-definitions state: pseudo-variable -> set of defining line numbers.
DefState = Mapping[str, FrozenSet[int]]


def assigned_names(target: ast.expr) -> Tuple[str, ...]:
    """Pseudo-variable names written by an assignment target.

    Plain names map to themselves; ``self.x`` maps to ``"self.x"``; tuple and
    list destructuring recurse.  Subscripts and foreign attributes define
    nothing trackable.
    """
    if isinstance(target, ast.Name):
        return (target.id,)
    if isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return (f"self.{target.attr}",)
        return ()
    if isinstance(target, (ast.Tuple, ast.List)):
        out: Tuple[str, ...] = ()
        for elt in target.elts:
            out += assigned_names(elt)
        return out
    if isinstance(target, ast.Starred):
        return assigned_names(target.value)
    return ()


class ReachingDefinitions(ForwardAnalysis[DefState]):
    """May-reach sets of definition lines per name / ``self.attr``."""

    def initial(self) -> DefState:
        return {}

    def bottom(self) -> DefState:
        return {}

    def join(self, a: DefState, b: DefState) -> DefState:
        if not a:
            return b
        if not b:
            return a
        merged: Dict[str, FrozenSet[int]] = dict(a)
        for name, defs in b.items():
            merged[name] = merged.get(name, frozenset()) | defs
        return merged

    def transfer(self, stmt: ast.stmt, state: DefState) -> DefState:
        targets: Tuple[str, ...] = ()
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                targets += assigned_names(t)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = assigned_names(stmt.target)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets = assigned_names(stmt.target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    targets += assigned_names(item.optional_vars)
        if not targets:
            return state
        updated = dict(state)
        line = frozenset([getattr(stmt, "lineno", 0)])
        for name in targets:
            if isinstance(stmt, ast.AugAssign):
                # x += ... both reads and writes: the old defs still reach.
                updated[name] = updated.get(name, frozenset()) | line
            else:
                updated[name] = line
        return updated


def reaching_definitions(cfg: CFG) -> Tuple[Dict[int, DefState], Dict[int, DefState]]:
    """Convenience wrapper: solve reaching definitions over ``cfg``."""
    return solve(cfg, ReachingDefinitions())
