"""Fault × adaptivity soak: crash the closed loop mid-migration.

The adaptive loop adds one durability question on top of the recovery
contract :mod:`repro.faults` already certifies: after a crash and
replay, does the *trigger* come back in the right state — same plan,
same cooldown clock — so it neither loses a migration nor fires the same
one twice?

:class:`AdaptiveRecoveryDriver` answers it by construction:

* every fired migration is offered to the :class:`RecoveryManager` as a
  :class:`TransitionEvent`, so it is journaled in the write-ahead log
  *before* it is applied — replay re-applies it like any other event;
* trigger evaluations run only between ``offer`` calls, never inside
  replay (replay happens inside ``offer``), so recovery cannot re-decide;
* on a restart over an existing store, the trigger state is
  reconstructed from the log alone (:func:`trigger_state_from_log`):
  arrivals consumed, the current order, and the cooldown clock of the
  last fire — the no-double-fire invariant needs nothing else persisted.

``python -m repro.optimizer.soak`` runs the certification the CI faults
job executes: for each seed, a drift workload is run fault-free to get
the oracle delivery and fire schedule, then re-run crashing at three
injected points around the first adaptive migration (before-log,
after-log, after-process); each crashed run must deliver exactly the
oracle's outputs and fire exactly the oracle's migrations.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.checkpoint import spec_from_json
from repro.engine.executor import Event, TransitionEvent
from repro.faults.plan import CRASH_POINTS, CrashFault, FaultInjector, FaultPlan
from repro.faults.recovery import RecoveryManager, StrategyFactory
from repro.faults.store import DurableStore, Lineage
from repro.migration.jisc import JISCStrategy
from repro.optimizer.cost import PlanCostMaintainer, live_state_size
from repro.optimizer.triggers import (
    HysteresisTrigger,
    TriggerDecision,
    TriggerPolicy,
)
from repro.plans.spec import left_deep_order
from repro.streams.schema import Schema
from repro.telemetry.hub import TelemetryTracer
from repro.workloads.drift import SelectivityDriftWorkload


def trigger_state_from_log(log: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Reconstruct the adaptive loop's durable state from a WAL.

    Returns ``{"arrivals": n, "order": [...] or None, "last_fired_at": m
    or None}`` — each transition record marks a fire at the arrival count
    preceding it.  (Forced transitions would be indistinguishable; the
    driver only journals adaptive fires, so the reading is exact here.)
    """
    arrivals = 0
    order: Optional[List[str]] = None
    last_fired_at: Optional[int] = None
    for record in log:
        if record["type"] == "arrival":
            arrivals += 1
        elif record["type"] == "transition":
            order = list(left_deep_order(spec_from_json(record["spec"])))
            last_fired_at = arrivals
    return {"arrivals": arrivals, "order": order, "last_fired_at": last_fired_at}


class AdaptiveRecoveryDriver:
    """The adaptive loop running under crash-recovery supervision.

    The same wiring as :class:`~repro.optimizer.adaptive.AdaptiveEngine`,
    but the target is a :class:`RecoveryManager`-supervised strategy and
    fired migrations go through ``manager.offer(TransitionEvent(...))``
    so the WAL journals them.  Restarting a driver over a non-empty store
    resumes with the trigger state implied by the log.
    """

    def __init__(
        self,
        factory: StrategyFactory,
        store: Optional[DurableStore] = None,
        checkpoint_every: int = 10,
        injector: Optional[FaultInjector] = None,
        policy: Optional[TriggerPolicy] = None,
        evaluate_every: int = 8,
        min_samples: int = 64,
        hub_options: Optional[Dict[str, Any]] = None,
    ):
        self.hub = TelemetryTracer(strategy="adaptive", **(hub_options or {}))
        self.manager = RecoveryManager(
            factory,
            store=store,
            checkpoint_every=checkpoint_every,
            injector=injector,
            tracer=self.hub,
        )
        self.policy: TriggerPolicy = (
            policy
            if policy is not None
            else HysteresisTrigger(min_improvement=0.1, confirm=2, cooldown=64)
        )
        self.evaluate_every = evaluate_every
        self.min_samples = min_samples
        self.decisions: List[TriggerDecision] = []
        self.fires: List[TriggerDecision] = []
        self.maintainer: Optional[PlanCostMaintainer] = None
        self.order: Optional[Tuple[str, ...]] = None
        restored = trigger_state_from_log(self.manager.store.log())
        self.arrivals: int = restored["arrivals"]
        if restored["order"] is not None:
            self.order = tuple(restored["order"])
        if restored["last_fired_at"] is not None:
            self.policy.restore_state(
                {"streak": 0, "last_fired_at": restored["last_fired_at"]}
            )

    # -- driving ---------------------------------------------------------------------

    def offer(self, event: Event) -> None:
        """One event through the supervised strategy, then maybe evaluate."""
        self.manager.offer(event)
        if isinstance(event, TransitionEvent):
            return
        self.arrivals += 1
        if self.arrivals % self.evaluate_every == 0:
            self.evaluate()

    def run(self, events: Iterable[Event]) -> List[Lineage]:
        for event in events:
            self.offer(event)
        return self.manager.delivered

    # -- the loop --------------------------------------------------------------------

    def _ensure_maintainer(self) -> PlanCostMaintainer:
        if self.maintainer is None:
            if self.order is None:
                strategy = self.manager.strategy
                if strategy is None:
                    raise RuntimeError("evaluate() before any offer(): no plan yet")
                self.order = left_deep_order(strategy.plan.spec)
            self.maintainer = PlanCostMaintainer(
                self.order, [self.hub], min_samples=self.min_samples
            )
        return self.maintainer

    def evaluate(self) -> TriggerDecision:
        maintainer = self._ensure_maintainer()
        strategy = self.manager.strategy
        snapshot = maintainer.refresh(
            self.arrivals,
            state_size=live_state_size(strategy) if strategy is not None else 0,
        )
        decision = self.policy.decide(snapshot, at=self.arrivals)
        self.decisions.append(decision)
        self.hub.trigger(
            decision.action,
            policy=self.policy.name,
            reason=decision.reason,
            at=decision.at,
            order=list(decision.order),
            best_order=list(decision.best_order),
            current_cost=decision.current_cost,
            best_cost=decision.best_cost,
            improvement=decision.improvement,
        )
        if decision.fired:
            self.fires.append(decision)
            # Journal-then-apply: the WAL carries the migration before the
            # strategy does, so replay after any later crash re-applies it
            # and a restarted driver sees it as already fired.
            self.manager.offer(TransitionEvent(decision.best_order))
            self.order = decision.best_order
            maintainer.set_order(decision.best_order)
        return decision

    def trigger_state(self) -> Dict[str, Any]:
        return {
            "arrivals": self.arrivals,
            "order": list(self.order) if self.order is not None else None,
            "policy": self.policy.state_to_json(),
        }


# -- the CLI certification (CI faults job) ----------------------------------------------


def soak_workload(
    n_tuples: int = 360, window: int = 16, seed: int = 0
) -> Tuple[Schema, Tuple[str, ...], List[Event]]:
    """A three-stream drift workload that provokes ≥1 adaptive fire.

    Phase one keeps the initial order (S0, S1, S2) optimal (S1 is the
    selective stream, already probed first); phase two — two thirds of
    the run, so the drifted evidence dominates the estimator windows —
    moves the scatter to S2, making the initial order worst and a
    warmed-up trigger fire.
    """
    names = ("S0", "S1", "S2")
    schema = Schema.uniform(names, window)
    phases = [(n_tuples // 3, "S1"), (n_tuples - n_tuples // 3, "S2")]
    workload = SelectivityDriftWorkload(
        names, phases, base_domain=8, scatter=24, seed=seed
    )
    return schema, names, list(workload.materialize())


def _fresh_driver(
    schema: Schema,
    order: Tuple[str, ...],
    injector: Optional[FaultInjector] = None,
    store: Optional[DurableStore] = None,
) -> AdaptiveRecoveryDriver:
    return AdaptiveRecoveryDriver(
        lambda: JISCStrategy(schema, order),
        store=store,
        checkpoint_every=10,
        injector=injector,
        policy=HysteresisTrigger(min_improvement=0.08, confirm=2, cooldown=64),
        evaluate_every=8,
        min_samples=32,
        # The workload is a few hundred tuples: estimator windows must be
        # much smaller than a phase, or the two phases' evidence blends
        # and no drift is ever visible.
        hub_options={
            "selectivity_window": 96,
            "drift_block": 16,
            "drift_min_samples": 32,
        },
    )


def soak_one_seed(seed: int, n_tuples: int = 360, window: int = 16) -> List[str]:
    """Certify one seed; returns failure descriptions (empty = pass)."""
    schema, order, events = soak_workload(n_tuples, window, seed)
    oracle = _fresh_driver(schema, order)
    oracle_delivered = oracle.run(events)
    failures: List[str] = []
    if not oracle.fires:
        return [f"seed {seed}: the drift workload provoked no adaptive fire"]
    oracle_fires = [d.at for d in oracle.fires]
    first_fire = oracle_fires[0]
    # Crash around the first migration: the arrival consumed right after
    # the fire lands mid-JISC-completion (lazy state completion is still
    # outstanding for migrated keys).
    for where in CRASH_POINTS:
        plan = FaultPlan(crashes=(CrashFault(at_arrival=first_fire + 1, where=where),))
        driver = _fresh_driver(schema, order, injector=FaultInjector(plan))
        delivered = driver.run(events)
        fires = [d.at for d in driver.fires]
        if driver.manager.recoveries != 1:
            failures.append(
                f"seed {seed}/{where}: expected exactly 1 recovery, "
                f"saw {driver.manager.recoveries}"
            )
        if sorted(delivered) != sorted(oracle_delivered):
            failures.append(
                f"seed {seed}/{where}: delivered outputs diverged from oracle "
                f"({len(delivered)} vs {len(oracle_delivered)})"
            )
        if len(delivered) != len(set(delivered)):
            failures.append(f"seed {seed}/{where}: duplicate delivery")
        if fires != oracle_fires:
            failures.append(
                f"seed {seed}/{where}: fire schedule diverged "
                f"(crashed={fires}, oracle={oracle_fires})"
            )
        # Restart certification: a fresh driver over the crashed store
        # must resume with the fired migration visible and the cooldown
        # clock running — no second fire of an already-journaled one.
        resumed = _fresh_driver(schema, order, store=driver.manager.store)
        state = resumed.trigger_state()
        if state["order"] != list(driver.order or ()):
            failures.append(
                f"seed {seed}/{where}: restart restored order {state['order']} "
                f"!= live order {list(driver.order or ())}"
            )
        expected_clock = fires[-1] if fires else None
        if state["policy"].get("last_fired_at") != expected_clock:
            failures.append(
                f"seed {seed}/{where}: restart lost the cooldown clock "
                f"({state['policy']})"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fault x adaptivity soak: crash mid-adaptive-migration"
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--tuples", type=int, default=360)
    parser.add_argument("--window", type=int, default=16)
    args = parser.parse_args(argv)
    failures: List[str] = []
    for seed in args.seeds:
        failures.extend(soak_one_seed(seed, args.tuples, args.window))
    cells = len(args.seeds) * len(CRASH_POINTS)
    if failures:
        print(f"ADAPTIVE SOAK: FAIL ({len(failures)} failures over {cells} cells)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"ADAPTIVE SOAK: OK — {cells} crash cells "
        f"(seeds {args.seeds} x {list(CRASH_POINTS)}), "
        "exactly-once delivery and trigger state preserved"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
