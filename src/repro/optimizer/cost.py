"""Incremental left-deep plan cost maintenance from live telemetry.

The cost model is the one :class:`repro.plans.SelectivityOptimizer` has
always ranked plans by, stated explicitly: for a left-deep probe order
``(s0, s1, ..., sn)`` the expected per-arrival probe work is

    cost(order) = sum_{k=1..n}  prod_{j=1..k-1} sigma(s_j)

i.e. one probe into ``s1``'s state, ``sigma(s1)`` expected partials
probing ``s2``, and so on.  The anchor ``s0``'s selectivity never appears
— it is where arrivals enter, not a probe target — so the optimal order
keeps the anchor and sorts the remaining streams by ascending
selectivity (an adjacent-exchange argument: swapping a higher-sigma
stream ahead of a lower one can only grow every later prefix product).

:class:`PlanCostMaintainer` keeps ``cost(current)`` and ``cost(best)``
continuously up to date by reading the per-stream windowed selectivity
series that :class:`repro.telemetry.hub.TelemetryTracer` maintains from
the operators' native probe tallies.  A refresh is O(streams) — the
estimators already did the windowing incrementally per block — which is
the "O(1) per block" maintenance the adaptive trigger loop runs on.

This module deliberately imports nothing from the rest of ``repro``:
it operates on flat stream-name tuples and plain floats, so the plans
optimizer, the adaptive engine, and the tests all share it without
import-cycle risk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Probe-sample floor below which a stream's selectivity estimate is not
#: yet trusted for triggering (the estimator may exist but be noise).
MIN_SAMPLES = 256


def order_cost(
    order: Sequence[str],
    selectivities: Mapping[str, float],
    probe_cost: float = 1.0,
) -> float:
    """Expected per-arrival probe work of a left-deep order.

    ``probe_cost`` scales the unit (useful when charging real per-probe
    cost-model units); the *ranking* of orders is scale-invariant.
    """
    total = 0.0
    carry = 1.0
    for name in order[1:]:
        total += carry
        carry *= selectivities[name]
    return total * probe_cost


def anchored_best_order(
    order: Sequence[str], selectivities: Mapping[str, float]
) -> Tuple[str, ...]:
    """Cost-minimal reordering of ``order`` keeping its anchor fixed.

    Ties break on the stream name so the result is deterministic across
    runs and hash seeds regardless of dict iteration order.
    """
    rest = sorted(order[1:], key=lambda name: (selectivities[name], name))
    return (order[0], *rest)


def worst_adjacent_inversion(
    order: Sequence[str], selectivities: Mapping[str, float]
) -> float:
    """Largest adjacent selectivity drop among the probed streams.

    Zero when the probe suffix is already sorted ascending; the magnitude
    is the tolerance knob :class:`repro.plans.SelectivityOptimizer`
    compares against before proposing a reorder.
    """
    worst = 0.0
    probed = order[1:]
    for a, b in zip(probed, probed[1:]):
        gap = selectivities[a] - selectivities[b]
        if gap > worst:
            worst = gap
    return worst


@dataclass(frozen=True)
class CostSnapshot:
    """One refresh of the maintainer: everything a trigger policy needs."""

    at: int
    order: Tuple[str, ...]
    selectivities: Dict[str, float] = field(default_factory=dict)
    samples: Dict[str, int] = field(default_factory=dict)
    total_rate: float = 0.0
    current_cost: float = 0.0
    best_order: Tuple[str, ...] = ()
    best_cost: float = 0.0
    ready: bool = False
    state_size: int = 0

    @property
    def improvement(self) -> float:
        """Relative cost reduction of switching to ``best_order`` (0 when
        not ready or the current order is already optimal)."""
        if not self.ready or self.current_cost <= 0:
            return 0.0
        gain = self.current_cost - self.best_cost
        return gain / self.current_cost if gain > 0 else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "order": list(self.order),
            "selectivities": {k: self.selectivities[k] for k in sorted(self.selectivities)},
            "samples": {k: self.samples[k] for k in sorted(self.samples)},
            "total_rate": self.total_rate,
            "current_cost": self.current_cost,
            "best_order": list(self.best_order),
            "best_cost": self.best_cost,
            "ready": self.ready,
            "state_size": self.state_size,
            "improvement": self.improvement,
        }


class PlanCostMaintainer:
    """Keeps current-plan and best-alternative costs live from hub series.

    Parameters
    ----------
    order:
        The currently executing left-deep probe order (stream names).
    hubs:
        Telemetry hubs whose per-stream selectivity series feed the model
        — one for a single engine, one per worker for a sharded executor.
        Replaceable via :meth:`set_hubs` (workers are rebuilt on crash
        recovery).
    min_samples:
        Windowed probe count every *probed* stream must reach before a
        snapshot reports ``ready=True``.
    """

    def __init__(
        self,
        order: Sequence[str],
        hubs: Iterable[Any] = (),
        min_samples: int = MIN_SAMPLES,
    ):
        self.order: Tuple[str, ...] = tuple(order)
        if len(self.order) < 2:
            raise ValueError("a probe order needs at least two streams")
        self._hubs: List[Any] = list(hubs)
        self.min_samples = min_samples
        self.last: Optional[CostSnapshot] = None

    def set_hubs(self, hubs: Iterable[Any]) -> None:
        self._hubs = list(hubs)

    def set_order(self, order: Sequence[str]) -> None:
        """Adopt the order the engine just migrated to."""
        new = tuple(order)
        if set(new) != set(self.order):
            raise ValueError("order must preserve the stream set")
        self.order = new

    def _aggregate(self, name: str) -> Optional[Tuple[int, float]]:
        """Probe-weighted mean of one stream's series across the hubs."""
        weight = 0
        acc = 0.0
        for hub in self._hubs:
            sample = hub.selectivity_sample(name)
            if sample is None:
                continue
            count, estimate = sample
            weight += count
            acc += count * estimate
        if weight <= 0:
            return None
        return weight, acc / weight

    def refresh(self, at: int, state_size: int = 0) -> CostSnapshot:
        """Poll the hubs and rebuild the cost snapshot (O(streams))."""
        total_rate = 0.0
        for hub in self._hubs:
            hub.poll()
            for rate in hub.arrival_rates().values():
                total_rate += rate
        selectivities: Dict[str, float] = {}
        samples: Dict[str, int] = {}
        ready = True
        for name in self.order:
            agg = self._aggregate(name)
            if agg is None:
                samples[name] = 0
                ready = False
                continue
            samples[name], selectivities[name] = agg
        # Every stream can be probed under *some* anchored reordering, so
        # readiness requires evidence for the full stream set.
        if ready:
            ready = all(samples[name] >= self.min_samples for name in self.order)
        if ready:
            current_cost = order_cost(self.order, selectivities)
            best_order = anchored_best_order(self.order, selectivities)
            best_cost = order_cost(best_order, selectivities)
        else:
            current_cost = 0.0
            best_order = self.order
            best_cost = 0.0
        snap = CostSnapshot(
            at=at,
            order=self.order,
            selectivities=selectivities,
            samples=samples,
            total_rate=total_rate,
            current_cost=current_cost,
            best_order=best_order,
            best_cost=best_cost,
            ready=ready,
            state_size=state_size,
        )
        self.last = snap
        return snap


def live_state_size(target: Any) -> int:
    """Total stored tuples across a strategy's (or executor's) live state.

    The migration-cost-aware trigger charges a JISC completion cost
    proportional to this.  Duck-typed over the three shapes in the repo:
    sharded executors (sum over workers), eddy executors (SteM windows),
    and plan-based strategies (operator hash states across live plans).
    """
    workers = getattr(target, "workers", None)
    if workers is not None:
        return sum(
            live_state_size(worker.strategy)
            for worker in workers
            if worker is not None
        )
    stems = getattr(target, "stems", None)
    if stems is not None:
        return sum(len(stem) for stem in stems.values())
    total = 0
    seen: set = set()
    tracks = getattr(target, "tracks", None)
    plans = [t.plan for t in tracks] if tracks is not None else []
    plan = getattr(target, "plan", None)
    if plan is not None:
        plans.append(plan)
    for p in plans:
        for op in p.operators():
            if id(op) in seen:
                continue
            seen.add(id(op))
            total += len(op.state)
    return total
