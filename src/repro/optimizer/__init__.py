"""repro.optimizer — the closed re-optimization loop.

Layered so the cost model is import-cycle-free:

* :mod:`repro.optimizer.cost` — the shared left-deep cost model and the
  incremental :class:`PlanCostMaintainer` (imports nothing from repro;
  :class:`repro.plans.SelectivityOptimizer` is rebased on it);
* :mod:`repro.optimizer.triggers` — pluggable :class:`TriggerPolicy`
  implementations (never / threshold / hysteresis / cost-aware);
* :mod:`repro.optimizer.adaptive` — :class:`AdaptiveEngine`, the
  end-to-end adaptive mode over engines and sharded executors (loaded
  lazily: it imports the engine and shard layers, which themselves import
  ``repro.plans`` — eager loading here would cycle through
  ``plans.optimizer``'s use of the cost model);
* :mod:`repro.optimizer.soak` — crash-recovery soak driver for the
  adaptive loop (lazy for the same reason).
"""

from typing import TYPE_CHECKING

from repro.optimizer.cost import (
    MIN_SAMPLES,
    CostSnapshot,
    PlanCostMaintainer,
    anchored_best_order,
    live_state_size,
    order_cost,
    worst_adjacent_inversion,
)
from repro.optimizer.triggers import (
    POLICIES,
    CostAwareTrigger,
    HysteresisTrigger,
    NeverTrigger,
    ThresholdTrigger,
    TriggerDecision,
    TriggerPolicy,
    make_policy,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.optimizer.adaptive import AdaptiveEngine, current_order
    from repro.optimizer.soak import AdaptiveRecoveryDriver

__all__ = [
    "MIN_SAMPLES",
    "CostSnapshot",
    "PlanCostMaintainer",
    "anchored_best_order",
    "live_state_size",
    "order_cost",
    "worst_adjacent_inversion",
    "POLICIES",
    "CostAwareTrigger",
    "HysteresisTrigger",
    "NeverTrigger",
    "ThresholdTrigger",
    "TriggerDecision",
    "TriggerPolicy",
    "make_policy",
    "AdaptiveEngine",
    "current_order",
    "AdaptiveRecoveryDriver",
]

_LAZY = {
    "AdaptiveEngine": ("repro.optimizer.adaptive", "AdaptiveEngine"),
    "current_order": ("repro.optimizer.adaptive", "current_order"),
    "AdaptiveRecoveryDriver": ("repro.optimizer.soak", "AdaptiveRecoveryDriver"),
}


def __getattr__(name: str):  # PEP 562: engine-layer exports load on first use
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
