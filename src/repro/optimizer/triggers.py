"""Pluggable re-optimization trigger policies.

A :class:`TriggerPolicy` turns a :class:`~repro.optimizer.cost.CostSnapshot`
into a :class:`TriggerDecision` — fire a JISC migration, suppress one, or
keep watching.  Policies are deliberately tiny pure state machines over
plain numbers:

* decisions depend only on the snapshot and the policy's own counters,
  never on wall time, object identity, or hash order, so the same input
  stream yields byte-identical decisions under any ``PYTHONHASHSEED``
  (pinned by the property tests);
* the mutable state is JSON-serializable (:meth:`TriggerPolicy.state_to_json`
  / :meth:`restore_state`) so crash recovery can restore a trigger
  mid-cooldown and certify no double-fire after replay.

========================  ====================================================
policy                    fires when
========================  ====================================================
:class:`NeverTrigger`     never (the forced-schedule / static baseline)
:class:`ThresholdTrigger` projected relative cost gain exceeds a threshold
:class:`HysteresisTrigger` the gain persists for ``confirm`` consecutive
                          evaluations and the cooldown since the last fire
                          has elapsed (flap damping)
:class:`CostAwareTrigger` additionally charges an estimated JISC completion
                          cost from live state size and only fires when the
                          projected savings over ``horizon`` arrivals exceed
                          it
========================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.obs.tracer import TRIGGER_EVALUATED, TRIGGER_FIRED, TRIGGER_SUPPRESSED
from repro.optimizer.cost import CostSnapshot


@dataclass(frozen=True)
class TriggerDecision:
    """One trigger evaluation, with the cost evidence it was based on."""

    action: str  # TRIGGER_EVALUATED | TRIGGER_FIRED | TRIGGER_SUPPRESSED
    reason: str
    at: int
    order: Tuple[str, ...]
    best_order: Tuple[str, ...]
    current_cost: float = 0.0
    best_cost: float = 0.0
    improvement: float = 0.0
    migration_cost: float = 0.0
    projected_savings: float = 0.0

    @property
    def fired(self) -> bool:
        return self.action == TRIGGER_FIRED

    def to_json(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "reason": self.reason,
            "at": self.at,
            "order": list(self.order),
            "best_order": list(self.best_order),
            "current_cost": self.current_cost,
            "best_cost": self.best_cost,
            "improvement": self.improvement,
            "migration_cost": self.migration_cost,
            "projected_savings": self.projected_savings,
        }

    def to_jsonl(self) -> str:
        """Canonical byte representation (sorted keys) for determinism checks."""
        return json.dumps(self.to_json(), sort_keys=True)


@runtime_checkable
class TriggerPolicy(Protocol):
    """Decides whether a cost snapshot justifies firing a migration."""

    name: str

    def decide(self, snapshot: CostSnapshot, at: int) -> TriggerDecision:
        """Evaluate once; mutates internal hysteresis/cooldown state."""
        ...

    def state_to_json(self) -> Dict[str, Any]:
        """Serializable mutable state (for WAL-backed crash recovery)."""
        ...

    def restore_state(self, state: Dict[str, Any]) -> None:
        ...


def _decision(
    action: str, reason: str, snapshot: CostSnapshot, at: int, **extra: float
) -> TriggerDecision:
    return TriggerDecision(
        action=action,
        reason=reason,
        at=at,
        order=snapshot.order,
        best_order=snapshot.best_order,
        current_cost=snapshot.current_cost,
        best_cost=snapshot.best_cost,
        improvement=snapshot.improvement,
        **extra,
    )


class NeverTrigger:
    """The never-migrate baseline: observes, reports, never fires."""

    name = "never"

    def decide(self, snapshot: CostSnapshot, at: int) -> TriggerDecision:
        return _decision(TRIGGER_EVALUATED, "never", snapshot, at)

    def state_to_json(self) -> Dict[str, Any]:
        return {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        pass


class ThresholdTrigger:
    """Fire as soon as the projected relative gain exceeds ``min_improvement``.

    The simplest closed loop — and the jumpiest: on a noisy selectivity
    plateau it can fire on every evaluation the gain peeks over the
    threshold.  :class:`HysteresisTrigger` is the production default.
    """

    name = "threshold"

    def __init__(self, min_improvement: float = 0.1):
        if min_improvement < 0:
            raise ValueError("min_improvement must be non-negative")
        self.min_improvement = min_improvement

    def decide(self, snapshot: CostSnapshot, at: int) -> TriggerDecision:
        if not snapshot.ready:
            return _decision(TRIGGER_EVALUATED, "warming_up", snapshot, at)
        if snapshot.improvement <= self.min_improvement:
            return _decision(TRIGGER_EVALUATED, "below_threshold", snapshot, at)
        return _decision(TRIGGER_FIRED, "threshold", snapshot, at)

    def state_to_json(self) -> Dict[str, Any]:
        return {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        pass


class HysteresisTrigger:
    """Threshold + confirmation streak + post-fire cooldown.

    Fires only when ``confirm`` *consecutive* evaluations clear the
    improvement threshold, and never within ``cooldown`` arrivals of the
    previous fire (qualifying evaluations inside the cooldown are
    reported as suppressed, with the evidence, so traces show the near
    misses).  Invariant pinned by the property tests: two fires are
    always at least ``cooldown`` arrivals apart.
    """

    name = "hysteresis"

    def __init__(
        self,
        min_improvement: float = 0.1,
        confirm: int = 2,
        cooldown: int = 256,
    ):
        if min_improvement < 0:
            raise ValueError("min_improvement must be non-negative")
        if confirm < 1:
            raise ValueError("confirm must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.min_improvement = min_improvement
        self.confirm = confirm
        self.cooldown = cooldown
        self.streak = 0
        self.last_fired_at: Optional[int] = None

    def decide(self, snapshot: CostSnapshot, at: int) -> TriggerDecision:
        if not snapshot.ready:
            self.streak = 0
            return _decision(TRIGGER_EVALUATED, "warming_up", snapshot, at)
        if snapshot.improvement <= self.min_improvement:
            self.streak = 0
            return _decision(TRIGGER_EVALUATED, "below_threshold", snapshot, at)
        self.streak += 1
        if self.streak < self.confirm:
            return _decision(TRIGGER_EVALUATED, "confirming", snapshot, at)
        if self.last_fired_at is not None and at - self.last_fired_at < self.cooldown:
            return _decision(TRIGGER_SUPPRESSED, "cooldown", snapshot, at)
        self.streak = 0
        self.last_fired_at = at
        return _decision(TRIGGER_FIRED, "hysteresis", snapshot, at)

    def state_to_json(self) -> Dict[str, Any]:
        return {"streak": self.streak, "last_fired_at": self.last_fired_at}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.streak = int(state.get("streak", 0))
        last = state.get("last_fired_at")
        self.last_fired_at = int(last) if last is not None else None


class CostAwareTrigger:
    """Hysteresis gated by an explicit migration-cost / savings trade-off.

    The JISC completion bill is charged *before* firing: migrating to a
    new plan forces lazy state completion of roughly the live state
    (``state_size`` probes-worth of work, scaled by ``completion_cost``
    per stored tuple).  Projected savings are the per-arrival cost gain
    times the ``horizon`` of future arrivals the new plan is assumed to
    serve.  Invariant pinned by the property tests: this policy never
    fires when ``migration_cost * safety >= projected_savings``.
    """

    name = "cost_aware"

    def __init__(
        self,
        min_improvement: float = 0.05,
        confirm: int = 2,
        cooldown: int = 256,
        horizon: int = 2000,
        completion_cost: float = 1.0,
        safety: float = 1.0,
    ):
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        if completion_cost < 0 or safety < 0:
            raise ValueError("completion_cost and safety must be non-negative")
        self._inner = HysteresisTrigger(
            min_improvement=min_improvement, confirm=confirm, cooldown=cooldown
        )
        self.horizon = horizon
        self.completion_cost = completion_cost
        self.safety = safety

    def decide(self, snapshot: CostSnapshot, at: int) -> TriggerDecision:
        migration_cost = snapshot.state_size * self.completion_cost
        projected = (snapshot.current_cost - snapshot.best_cost) * self.horizon
        if projected < 0:
            projected = 0.0
        inner = self._inner.decide(snapshot, at)
        if not inner.fired:
            return _decision(
                inner.action,
                inner.reason,
                snapshot,
                at,
                migration_cost=migration_cost,
                projected_savings=projected,
            )
        if projected <= migration_cost * self.safety:
            # Roll the fire back: the streak stays consumed (matching a
            # fire), but the cooldown clock must not start on a
            # suppression, or a genuinely worthwhile fire right after
            # would be cooldown-blocked by a migration that never ran.
            self._inner.last_fired_at = None
            return _decision(
                TRIGGER_SUPPRESSED,
                "migration_cost",
                snapshot,
                at,
                migration_cost=migration_cost,
                projected_savings=projected,
            )
        return _decision(
            TRIGGER_FIRED,
            "cost_aware",
            snapshot,
            at,
            migration_cost=migration_cost,
            projected_savings=projected,
        )

    def state_to_json(self) -> Dict[str, Any]:
        return self._inner.state_to_json()

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._inner.restore_state(state)

    @property
    def last_fired_at(self) -> Optional[int]:
        return self._inner.last_fired_at


@dataclass(frozen=True)
class RebalanceDecision:
    """One shard-rebalance trigger evaluation, with its load evidence."""

    action: str  # TRIGGER_EVALUATED | TRIGGER_FIRED | TRIGGER_SUPPRESSED
    reason: str
    at: int
    shard_loads: Tuple[float, ...] = ()
    imbalance: float = 0.0
    batch_keys: int = 0
    mode: Optional[str] = None
    hot_keys: Tuple[Any, ...] = field(default=())

    @property
    def fired(self) -> bool:
        return self.action == TRIGGER_FIRED

    def to_json(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "reason": self.reason,
            "at": self.at,
            "shard_loads": list(self.shard_loads),
            "imbalance": self.imbalance,
            "batch_keys": self.batch_keys,
            "mode": self.mode,
            "hot_keys": list(self.hot_keys),
        }

    def to_jsonl(self) -> str:
        """Canonical byte representation (sorted keys) for determinism checks."""
        return json.dumps(self.to_json(), sort_keys=True, default=str)


class ShardImbalanceTrigger:
    """Fluid-rebalance trigger over per-shard load and hot-key evidence.

    The sharded analogue of :class:`HysteresisTrigger`: where the plan
    triggers watch *selectivity* drift, this one watches *placement*
    drift — the per-shard arrival shares the coordinator's hot-key
    sketches summarize.  It fires when the hottest shard's share of
    recent arrivals exceeds ``max_imbalance`` times its fair share for
    ``confirm`` consecutive evaluations (with a post-fire ``cooldown``,
    same flap-damping invariant as the plan triggers).  A fire is meant
    to become a :meth:`~repro.shard.executor.ShardedExecutor.fluid_rebalance`
    toward a sketch-weighted target (see
    :func:`~repro.shard.partition.weighted_assignment`), at this policy's
    ``batch_keys`` granularity — migration stays off the latency path
    even when the optimizer itself requests it.
    """

    name = "shard_imbalance"

    def __init__(
        self,
        max_imbalance: float = 1.5,
        confirm: int = 2,
        cooldown: int = 512,
        batch_keys: int = 4,
        mode: Optional[str] = None,
        min_load: float = 32.0,
    ):
        if max_imbalance < 1.0:
            raise ValueError("max_imbalance must be at least 1.0 (fair share)")
        if confirm < 1:
            raise ValueError("confirm must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if min_load < 0:
            raise ValueError("min_load must be non-negative")
        self.max_imbalance = max_imbalance
        self.confirm = confirm
        self.cooldown = cooldown
        self.batch_keys = batch_keys
        self.mode = mode
        self.min_load = min_load
        self.streak = 0
        self.last_fired_at: Optional[int] = None

    def _decision(
        self, action: str, reason: str, at: int, loads: Sequence[float], imbalance: float
    ) -> RebalanceDecision:
        return RebalanceDecision(
            action=action,
            reason=reason,
            at=at,
            shard_loads=tuple(float(x) for x in loads),
            imbalance=imbalance,
            batch_keys=self.batch_keys,
            mode=self.mode,
        )

    def decide(self, loads: Sequence[float], at: int) -> RebalanceDecision:
        """Evaluate once against per-shard recent-arrival loads."""
        total = float(sum(loads))
        n = len(loads)
        if n < 2 or total < self.min_load:
            self.streak = 0
            return self._decision(TRIGGER_EVALUATED, "warming_up", at, loads, 0.0)
        fair = total / n
        imbalance = max(loads) / fair if fair > 0 else 0.0
        if imbalance <= self.max_imbalance:
            self.streak = 0
            return self._decision(TRIGGER_EVALUATED, "balanced", at, loads, imbalance)
        self.streak += 1
        if self.streak < self.confirm:
            return self._decision(TRIGGER_EVALUATED, "confirming", at, loads, imbalance)
        if self.last_fired_at is not None and at - self.last_fired_at < self.cooldown:
            return self._decision(TRIGGER_SUPPRESSED, "cooldown", at, loads, imbalance)
        self.streak = 0
        self.last_fired_at = at
        return self._decision(TRIGGER_FIRED, "shard_imbalance", at, loads, imbalance)

    def state_to_json(self) -> Dict[str, Any]:
        return {"streak": self.streak, "last_fired_at": self.last_fired_at}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.streak = int(state.get("streak", 0))
        last = state.get("last_fired_at")
        self.last_fired_at = int(last) if last is not None else None


#: Registry of trigger policy constructors by name (CLI / bench wiring).
POLICIES = {
    "never": NeverTrigger,
    "threshold": ThresholdTrigger,
    "hysteresis": HysteresisTrigger,
    "cost_aware": CostAwareTrigger,
}

#: Shard-rebalance trigger policies (a separate protocol: they consume
#: per-shard loads, not plan-cost snapshots).
REBALANCE_POLICIES = {
    "shard_imbalance": ShardImbalanceTrigger,
}


def make_rebalance_policy(name: str, **options: Any) -> ShardImbalanceTrigger:
    try:
        ctor = REBALANCE_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown rebalance policy {name!r}; known: {sorted(REBALANCE_POLICIES)}"
        ) from None
    return ctor(**options)


def make_policy(name: str, **options: Any) -> TriggerPolicy:
    try:
        ctor = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown trigger policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    return ctor(**options)
