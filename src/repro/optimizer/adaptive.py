"""Adaptive mode: the closed optimizer loop, end to end.

:class:`AdaptiveEngine` wraps any strategy (``process``/``transition``)
or a :class:`~repro.shard.executor.ShardedExecutor` and closes the loop
the paper leaves open: telemetry estimators feed a
:class:`~repro.optimizer.cost.PlanCostMaintainer`, a
:class:`~repro.optimizer.triggers.TriggerPolicy` turns cost snapshots
into decisions at a fixed arrival cadence, and a fired decision becomes
an ordinary JISC ``transition()`` — the migration machinery is exactly
the one forced schedules use, so every conformance guarantee carries
over unchanged.  On a drift workload the engine re-optimizes itself; no
schedule is supplied.

Every decision (fired or not) is published through the tracer seam as a
``trigger`` event with its cost evidence, so a recorded trace — and the
live dashboard — show *why* each migration happened (or didn't).

Determinism: evaluations happen at exact arrival counts, estimator state
is a pure function of the arrival prefix, and tie-breaks are lexicographic
— so the decision sequence is reproducible run-to-run and across
``PYTHONHASHSEED`` values (pinned by the property tests).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.engine.executor import Event, TransitionEvent
from repro.migration.base import SpecLike, as_spec
from repro.optimizer.cost import (
    MIN_SAMPLES,
    CostSnapshot,
    PlanCostMaintainer,
    live_state_size,
)
from repro.optimizer.triggers import (
    HysteresisTrigger,
    RebalanceDecision,
    ShardImbalanceTrigger,
    TriggerDecision,
    TriggerPolicy,
)
from repro.plans.spec import left_deep_order
from repro.shard.executor import RebalanceEvent, ResizeEvent
from repro.shard.partition import weighted_assignment
from repro.telemetry.hub import ShardTelemetry, TelemetryTracer

#: Default trigger-evaluation cadence, in arrivals.  Aligned with the
#: hub's probe-poll interval so most evaluations read freshly polled
#: estimates; the maintainer polls explicitly anyway, so any cadence is
#: correct — this one just avoids redundant poll work.
EVALUATE_EVERY = 64


def current_order(target: Any) -> Tuple[str, ...]:
    """The probe order a strategy or sharded executor is running now."""
    routing = getattr(target, "routing", None)
    if routing is not None:
        return tuple(routing)
    tracks = getattr(target, "tracks", None)
    if tracks:
        return left_deep_order(tracks[-1].plan.spec)
    plan = getattr(target, "plan", None)
    if plan is not None:
        return left_deep_order(plan.spec)
    initial = getattr(target, "initial_spec", None)
    if initial is not None:
        return left_deep_order(as_spec(initial))
    raise TypeError(f"cannot derive a probe order from {type(target).__name__}")


class AdaptiveEngine:
    """Self-driving wrapper around one strategy or sharded executor.

    Parameters
    ----------
    target:
        Anything with ``process(tuple)`` and ``transition(spec)`` — a
        migration strategy, a :class:`~repro.eddy.cacq.CACQExecutor`, or
        a :class:`~repro.shard.executor.ShardedExecutor` (detected by its
        ``workers``/``num_shards`` shape).
    policy:
        The :class:`TriggerPolicy`; hysteresis with defaults if omitted.
    evaluate_every:
        Trigger-evaluation cadence in arrivals.
    telemetry:
        An existing hub (:class:`TelemetryTracer`) or shard telemetry to
        reuse; one is created and attached when omitted (reusing
        ``target.telemetry`` on sharded executors that already have one).
    min_samples:
        Windowed probe evidence required per stream before the policy
        sees ``ready`` snapshots (see :class:`PlanCostMaintainer`).
    rebalance_policy:
        Optional :class:`ShardImbalanceTrigger` (sharded targets only):
        evaluated at the same cadence over per-shard arrival loads; a
        fire becomes a hot-key-sketch-weighted
        :meth:`~repro.shard.executor.ShardedExecutor.fluid_rebalance` at
        the policy's granularity.
    hub_options:
        Extra keyword options for hubs this engine creates (estimator
        windows, drift parameters — see :class:`TelemetryTracer`).
    """

    def __init__(
        self,
        target: Any,
        policy: Optional[TriggerPolicy] = None,
        order: Optional[Iterable[str]] = None,
        evaluate_every: int = EVALUATE_EVERY,
        telemetry: Optional[Any] = None,
        min_samples: int = MIN_SAMPLES,
        registry: Optional[Any] = None,
        rebalance_policy: Optional[ShardImbalanceTrigger] = None,
        hub_options: Optional[Dict[str, Any]] = None,
        inner: Optional[Any] = None,
    ):
        if evaluate_every < 1:
            raise ValueError("evaluate_every must be at least 1")
        self.target = target
        self.policy: TriggerPolicy = policy if policy is not None else HysteresisTrigger()
        self.evaluate_every = evaluate_every
        self.sharded = hasattr(target, "num_shards") and hasattr(target, "workers")
        options = dict(hub_options or {})
        if telemetry is not None:
            self.telemetry = telemetry
        elif self.sharded:
            existing = getattr(target, "telemetry", None)
            self.telemetry = (
                existing
                if existing is not None
                else ShardTelemetry(target, registry=registry, inner=inner, **options)
            )
        else:
            hub = TelemetryTracer(
                registry=registry,
                strategy=getattr(target, "name", "engine"),
                inner=inner,
                **options,
            )
            hub.attach(target)
            self.telemetry = hub
        self.order: Tuple[str, ...] = (
            tuple(order) if order is not None else current_order(target)
        )
        self.maintainer = PlanCostMaintainer(
            self.order, self._hubs(), min_samples=min_samples
        )
        self.arrivals = 0
        self.decisions: List[TriggerDecision] = []
        self.migrations: List[TriggerDecision] = []
        if rebalance_policy is not None and not self.sharded:
            raise ValueError("rebalance_policy requires a sharded target")
        self.rebalance_policy = rebalance_policy
        self.rebalance_decisions: List[RebalanceDecision] = []
        self.rebalance_fires: List[RebalanceDecision] = []
        self._load_base: Dict[int, int] = {}
        self._until_eval = evaluate_every

    # -- plumbing --------------------------------------------------------------------

    def _hubs(self) -> List[TelemetryTracer]:
        if self.sharded:
            return [self.telemetry.workers[s] for s in sorted(self.telemetry.workers)]
        return [self.telemetry]

    def _decision_hub(self) -> TelemetryTracer:
        return self.telemetry.coordinator if self.sharded else self.telemetry

    @property
    def last_decision(self) -> Optional[TriggerDecision]:
        return self.decisions[-1] if self.decisions else None

    @property
    def fire_count(self) -> int:
        return len(self.migrations)

    # -- driving ---------------------------------------------------------------------

    def process(self, tup: Any) -> None:
        """One arrival through the target, then maybe a trigger evaluation."""
        self.target.process(tup)
        self.arrivals += 1
        left = self._until_eval = self._until_eval - 1
        if not left:
            self._until_eval = self.evaluate_every
            self.evaluate()

    def run(self, events: Iterable[Event]) -> "AdaptiveEngine":
        """Drive arrivals (and any forced transitions / rebalances)."""
        for event in events:
            if isinstance(event, TransitionEvent):
                self.transition(event.new_spec)
            elif isinstance(event, RebalanceEvent):
                if event.batch_keys is None:
                    self.target.rebalance(event.assignment, event.mode)
                else:
                    self.target.fluid_rebalance(
                        event.assignment, event.mode, batch_keys=event.batch_keys
                    )
            elif isinstance(event, ResizeEvent):
                self.target.resize(
                    event.n_shards, event.mode, batch_keys=event.batch_keys
                )
            else:
                self.process(event)
        return self

    def transition(self, new_spec: "SpecLike") -> None:
        """Forced transition (schedule-driven); adaptive bookkeeping follows."""
        order = left_deep_order(as_spec(new_spec))
        self.target.transition(new_spec)
        self.order = order
        self.maintainer.set_order(order)

    # -- the loop --------------------------------------------------------------------

    def evaluate(self) -> TriggerDecision:
        """Refresh costs, ask the policy, publish the decision, maybe fire."""
        # Workers are rebuilt on crash recovery and their hubs re-created;
        # re-resolve the hub set so the maintainer never reads a dead one.
        self.maintainer.set_hubs(self._hubs())
        snapshot = self.maintainer.refresh(
            self.arrivals, state_size=live_state_size(self.target)
        )
        decision = self.policy.decide(snapshot, at=self.arrivals)
        self.decisions.append(decision)
        self._decision_hub().trigger(
            decision.action,
            policy=self.policy.name,
            reason=decision.reason,
            at=decision.at,
            order=list(decision.order),
            best_order=list(decision.best_order),
            current_cost=decision.current_cost,
            best_cost=decision.best_cost,
            improvement=decision.improvement,
            migration_cost=decision.migration_cost,
            projected_savings=decision.projected_savings,
        )
        if decision.fired:
            self.target.transition(decision.best_order)
            self.order = decision.best_order
            self.maintainer.set_order(decision.best_order)
            self.migrations.append(decision)
        if self.rebalance_policy is not None:
            self._evaluate_rebalance()
        return decision

    def _evaluate_rebalance(self) -> Optional[RebalanceDecision]:
        """The placement half of the loop: shard loads -> fluid rebalance.

        Per-shard load is each worker hub's arrival count over the last
        evaluation window.  A fire builds a hot-key-weighted target from
        the union of the worker sketches and starts a fluid plan at the
        policy's granularity — never a stop-the-world rebalance.  While a
        plan is still draining the policy is not consulted (one active
        plan at a time; the executor would reject a second anyway).
        """
        policy = self.rebalance_policy
        target = self.target
        if policy is None or target.rebalance_in_progress:
            return None
        hubs = self.telemetry.workers
        shards = sorted(hubs)
        loads = [
            float(hubs[s].arrivals_seen - self._load_base.get(s, 0)) for s in shards
        ]
        decision = policy.decide(loads, at=self.arrivals)
        for s in shards:
            self._load_base[s] = hubs[s].arrivals_seen
        self.rebalance_decisions.append(decision)
        self._decision_hub().trigger(
            decision.action,
            kind="rebalance",
            policy=policy.name,
            reason=decision.reason,
            at=decision.at,
            shard_loads=list(decision.shard_loads),
            imbalance=decision.imbalance,
            batch_keys=decision.batch_keys,
        )
        if decision.fired:
            assignment = weighted_assignment(
                target.partitioner.num_buckets,
                target.num_shards,
                self._bucket_weights(),
            )
            target.fluid_rebalance(
                assignment, policy.mode, batch_keys=policy.batch_keys
            )
            self.rebalance_fires.append(decision)
        return decision

    def _bucket_weights(self) -> Dict[int, float]:
        """Per-bucket load evidence from the union of worker hot-key sketches."""
        weights: Dict[int, float] = {}
        partitioner = self.target.partitioner
        hubs = self.telemetry.workers
        for shard in sorted(hubs):
            hub = hubs[shard]
            hub.poll()
            for key, count, _err in hub.topk.top(len(hub.topk)):
                bucket = partitioner.bucket_of(key)
                weights[bucket] = weights.get(bucket, 0.0) + float(count)
        return weights

    # -- trigger-state durability (fault soak) ----------------------------------------

    def trigger_state(self) -> Dict[str, Any]:
        """JSON-serializable loop state (see the fault × adaptivity soak)."""
        return {
            "arrivals": self.arrivals,
            "order": list(self.order),
            "policy": self.policy.state_to_json(),
        }

    def restore_trigger_state(self, state: Dict[str, Any]) -> None:
        self.arrivals = int(state["arrivals"])
        self._until_eval = (
            self.evaluate_every - self.arrivals % self.evaluate_every
        )
        order = tuple(state["order"])
        self.order = order
        self.maintainer.set_order(order)
        self.policy.restore_state(state.get("policy", {}))

    # -- output passthrough ------------------------------------------------------------

    @property
    def outputs(self) -> List[Any]:
        outputs = getattr(self.target, "outputs", None)
        if outputs is not None:
            return outputs
        raise AttributeError("target exposes lineages only; use output_lineages()")

    def output_lineages(self) -> List[Tuple]:
        return self.target.output_lineages()

    def last_snapshot(self) -> Optional[CostSnapshot]:
        return self.maintainer.last
