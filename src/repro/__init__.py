"""repro — a full reproduction of *JISC: Adaptive Stream Processing Using
Just-In-Time State Completion* (Aly, Aref, Ouzzani, Mahmoud; EDBT 2014).

Public API tour
---------------

Streams and workloads::

    from repro import Schema, StreamTuple, UniformWorkload

Strategies (all share the ``process`` / ``transition`` / ``outputs``
interface and can be driven by :func:`repro.run_events`)::

    from repro import (
        JISCStrategy, MovingStateStrategy, ParallelTrackStrategy,
        StaticPlanExecutor, CACQExecutor, STAIRSExecutor, JISCStairsExecutor,
    )

Plans and transitions::

    from repro import left_deep, best_case_transition, worst_case_transition

Observability (see docs/OBSERVABILITY.md)::

    from repro import RecordingTracer, load_trace, render_report

Fault injection & crash recovery (see docs/FAULT_INJECTION.md)::

    from repro import FaultPlan, FaultInjector, RecoveryManager, InvariantChecker

Section 5 analysis::

    from repro.analysis import expected_complete_states, monte_carlo_summary

See ``examples/quickstart.py`` for a complete end-to-end program.
"""

from typing import Any

from repro.streams import (
    StreamTuple,
    CompositeTuple,
    Schema,
    StreamDescriptor,
    SlidingWindow,
    UniformWorkload,
    ZipfWorkload,
)
from repro.engine import (
    Metrics,
    Counter,
    CostModel,
    VirtualClock,
    TransitionEvent,
    run_events,
)
from repro.engine.query import ContinuousQuery
from repro.plans import (
    left_deep,
    build_plan,
    classify_states,
    best_case_transition,
    worst_case_transition,
    pairwise_exchange,
    SelectivityOptimizer,
)
from repro.migration import (
    StaticPlanExecutor,
    JISCStrategy,
    MovingStateStrategy,
    ParallelTrackStrategy,
    MJoinExecutor,
)
from repro.eddy import CACQExecutor, STAIRSExecutor, JISCStairsExecutor
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    RecoveryManager,
    SimulatedCrash,
)
from repro.obs import RecordingTracer, Tracer, load_trace
from repro.workloads import chain_scenario, migration_stage_events, frequency_events

__version__ = "1.0.0"

__all__ = [
    "StreamTuple",
    "CompositeTuple",
    "Schema",
    "StreamDescriptor",
    "SlidingWindow",
    "UniformWorkload",
    "ZipfWorkload",
    "Metrics",
    "Counter",
    "CostModel",
    "VirtualClock",
    "TransitionEvent",
    "run_events",
    "ContinuousQuery",
    "left_deep",
    "build_plan",
    "classify_states",
    "best_case_transition",
    "worst_case_transition",
    "pairwise_exchange",
    "SelectivityOptimizer",
    "StaticPlanExecutor",
    "JISCStrategy",
    "MovingStateStrategy",
    "ParallelTrackStrategy",
    "MJoinExecutor",
    "CACQExecutor",
    "STAIRSExecutor",
    "JISCStairsExecutor",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "RecoveryManager",
    "SimulatedCrash",
    "RecordingTracer",
    "Tracer",
    "load_trace",
    "render_report",
    "chain_scenario",
    "migration_stage_events",
    "frequency_events",
    "__version__",
]


def __getattr__(name: str) -> Any:
    # Lazy, mirroring repro.obs: keeps ``python -m repro.obs.report`` free
    # of the runpy already-imported RuntimeWarning.
    if name == "render_report":
        from repro.obs.report import render_report

        return render_report
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
