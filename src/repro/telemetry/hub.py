"""The telemetry hub: always-on engine instrumentation behind the tracer seam.

:class:`TelemetryTracer` is a :class:`~repro.obs.tracer.Tracer` whose
hooks feed *live* streaming estimators and a labeled
:class:`~repro.telemetry.registry.MetricsRegistry` instead of (or in
addition to) a post-hoc event ring.  Because every instrumentation site
in the engine already publishes through the tracer — ``Metrics.count``,
arrivals, outputs, phase scoping, transitions, rebalances, faults — the
whole engine becomes continuously self-measuring by attaching one object,
with **zero op-count perturbation** (the same guarantee the obs tracer
carries, certified by the telemetry gate in :mod:`repro.perf.regress`).

Division of labour with :mod:`repro.obs`:

* **traces** (RecordingTracer) answer *what happened* after the run;
* **telemetry** (this module) answers *what is true right now* — windowed
  selectivities, arrival/output rates, drift flags, hot keys — in O(1)
  memory, while the stream is still flowing.

Wrap an obs tracer via ``inner=`` to get both at once; periodic registry
snapshots are then interleaved into the trace as ``telemetry`` note
events, so one JSONL file carries the full story.

:class:`ShardTelemetry` attaches one hub per shard worker (labels
``shard=i``) plus one to the coordinator, all publishing into a single
shared registry — the per-shard view the dashboard renders.  It also
registers itself on the executor so crash recovery re-attaches and
re-registers every series the rebuilt worker owns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.tracer import PHASE_STEADY, Tracer
from repro.telemetry.estimators import SampledRate, SelectivityDriftDetector
from repro.telemetry.expo import SnapshotLog, registry_snapshot
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.sketch import SpaceSavingSketch

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.operators.base import Operator
    from repro.shard.executor import ShardedExecutor
    from repro.shard.worker import ShardWorker
    from repro.streams.tuples import AnyTuple, StreamTuple

#: Default sliding window of the per-operator selectivity estimators
#: ("what is the selectivity over the last 5k probes, right now?").
SELECTIVITY_WINDOW = 5000

#: Default sliding window (in arrivals) of the rate estimators.
RATE_WINDOW = 1024

#: Default cell count of the per-hub hot-key sketch.  128 cells is a few
#: KB per hub, monitors typical key domains exactly (no eviction churn on
#: the hot path), and keeps top-k recall high on heavy-tailed workloads.
TOPK_CAPACITY = 128

#: Default probe-block size of the drift detectors: EWMA/Page–Hinkley
#: advance once per ``block`` probes (weighted by the block size, so
#: thresholds keep their per-probe meaning).  Worst-case windowed-estimate
#: error vs an exact recompute is block/window = 1.28%, inside the 2%
#: acceptance bound certified by the estimator tests.
DRIFT_BLOCK = 64

#: How many arrivals between polls of the operators' probe tallies.
#: Operators tally probes/hits natively (two int adds, always on — see
#: :class:`~repro.operators.base.Operator`); the hub reads deltas at this
#: cadence instead of intercepting every probe, so attaching telemetry
#: adds zero per-probe work (the overhead gate in :mod:`repro.perf.regress`
#: counts on it).  Each poll has a per-source/per-stream fixed cost
#: (~30us with 41 operators), so the interval directly sets the
#: telemetry tax: 64 amortizes it to well under 1us per arrival while
#: still sampling rates and selectivities every 64 tuples — far finer
#: than the 5k-probe selectivity window or 1k-arrival rate window need.
PROBE_POLL_EVERY = 64


def _operator_label(op: "Operator") -> str:
    """Stable label of an operator: its membership, sorted ("S0S1S2")."""
    return "".join(sorted(op.membership))


def _live_plans(strategy: Any) -> List[Any]:
    """All live physical plans of a strategy (tracks, single plan, or none)."""
    tracks = getattr(strategy, "tracks", None)
    if tracks is not None:
        return [t.plan for t in tracks]
    plan = getattr(strategy, "plan", None)
    return [plan] if plan is not None else []


class TelemetryTracer(Tracer):
    """Live metrics hub for one engine (or one shard's worker).

    Parameters
    ----------
    registry:
        Shared :class:`MetricsRegistry` to publish into (fresh if omitted).
    strategy / shard:
        Label values stamped on every series this hub registers.
    inner:
        Optional downstream tracer (normally a
        :class:`~repro.obs.tracer.RecordingTracer`); every hook is
        forwarded so traces and telemetry come from one attachment.
    selectivity_window / rate_window / topk:
        Estimator extents (see module constants).
    drift_delta / drift_threshold / drift_min_samples:
        Page–Hinkley parameters of the per-operator drift detectors.
    drift_block:
        Probe-block size of the drift detectors (see :data:`DRIFT_BLOCK`);
        clamped to ``selectivity_window``.  ``1`` makes the windowed
        estimate exact at higher per-probe cost.
    snapshot_every:
        Take a registry snapshot every N arrivals (0 disables); snapshots
        accumulate in ``snapshots`` (a :class:`SnapshotLog`) and are
        interleaved into the inner trace as ``telemetry`` notes.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        strategy: str = "engine",
        shard: Optional[int] = None,
        inner: Optional[Tracer] = None,
        selectivity_window: int = SELECTIVITY_WINDOW,
        rate_window: int = RATE_WINDOW,
        topk: int = TOPK_CAPACITY,
        drift_delta: float = 0.005,
        drift_threshold: float = 20.0,
        drift_min_samples: int = 200,
        drift_block: int = DRIFT_BLOCK,
        snapshot_every: int = 0,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.phase = PHASE_STEADY
        self._labels: Dict[str, str] = {"strategy": strategy}
        if shard is not None:
            self._labels["shard"] = str(shard)
        self._inner = inner
        # Per-op callbacks are only needed to keep an inner recording
        # tracer fed; the hub itself derives per-phase op counts from
        # Metrics.counts deltas at phase boundaries (zero per-op cost).
        self.wants_counts = inner is not None and inner.wants_counts
        self.selectivity_window = selectivity_window
        self.rate_window = rate_window
        self.drift_delta = drift_delta
        self.drift_threshold = drift_threshold
        self.drift_min_samples = drift_min_samples
        self.drift_block = min(drift_block, selectivity_window)
        self.snapshot_every = snapshot_every
        self.snapshots = SnapshotLog()

        self._clock: Optional[Any] = None
        self._strategy: Optional[Any] = None
        self._metrics: Optional[Any] = None
        # Per-phase op counts, built from Metrics.counts deltas flushed at
        # phase boundaries and at sync() — equivalent to accumulating in
        # on_count (counts are monotone and only change between
        # boundaries) without any per-op work.
        self._ops: Dict[str, Dict[str, int]] = {}
        self._base: Dict[str, int] = {}
        self._op_counters: Dict[Tuple[str, str], Counter] = {}
        self._arrivals = 0
        # Hot-path accumulators: plain per-stream int counts and a key
        # buffer; rate sampling and the sketch drain happen at the poll
        # cadence so an arrival touches almost no telemetry memory.
        self._stream_counts: Dict[str, int] = {}
        self._key_buf: List[Any] = []
        rate_samples = max(2, rate_window // max(1, PROBE_POLL_EVERY))
        self._stream_rates: Dict[str, SampledRate] = {}
        self._rate_gauges: Dict[str, Tuple[Counter, Gauge]] = {}
        self._outputs = 0
        self._output_rate = SampledRate(rate_samples)
        self._rate_samples = rate_samples
        self.topk = SpaceSavingSketch(topk)
        # probed-operator label -> (detector, estimate gauge, smoothed
        # gauge, flag gauge, drift-event counter)
        self._sel: Dict[str, Tuple[SelectivityDriftDetector, Gauge, Gauge, Gauge, Counter]] = {}
        # Polled probe sources: [operator, label, entry-or-None, base
        # probes, base hits] per live-plan operator (see PROBE_POLL_EVERY).
        self._probe_sources: List[List[Any]] = []
        self._poll_every = PROBE_POLL_EVERY
        self._poll_left = PROBE_POLL_EVERY

        labels = self._labels
        reg = self.registry
        self._phase_gauge = reg.gauge("engine_phase", **labels)
        self._phase_gauge.set(self.phase)
        self._arrivals_total = reg.counter("engine_arrivals_total", **labels)
        self._outputs_total = reg.counter("engine_outputs_total", **labels)
        self._output_rate_gauge = reg.gauge("engine_output_rate", **labels)
        self._transitions_total = reg.counter("engine_transitions_total", **labels)
        self._completions_total = reg.counter("engine_completions_total", **labels)
        self._checkpoints_total = reg.counter("engine_checkpoints_total", **labels)
        self._faults_total = reg.counter("engine_faults_total", **labels)
        self._recoveries_total = reg.counter("engine_recoveries_total", **labels)
        self._hot_keys = reg.gauge("engine_hot_keys", **labels)
        self._snapshots_total = reg.counter("telemetry_snapshots_total", **labels)
        # Shard-rebalance series are registered on the first rebalance
        # event (most hubs never see one) — see _register_shard_series.
        self._shard_series_ready = False
        self._rebalances_total: Counter
        self._rebalance_pending: Gauge
        self._keys_retired_total: Counter
        self._keys_settled_total: Counter
        self._moved_tuples_total: Counter
        self._batches_remaining: Gauge
        self._batch_latency: Histogram
        # Optimizer-trigger series follow the same lazy pattern: only hubs
        # driven by an adaptive engine ever see a trigger decision.
        self._trigger_series_ready = False
        self._trigger_evaluations: Counter
        self._trigger_fires: Counter
        self._trigger_suppressions: Counter
        self._trigger_cost_current: Gauge
        self._trigger_cost_best: Gauge

    # -- wiring -----------------------------------------------------------------------

    def attach(self, target: Any) -> Any:
        """Attach to a strategy (anything with ``.metrics``) or a Metrics.

        Mirrors :meth:`RecordingTracer.attach`: counters accumulated
        before attaching are credited to the current phase, the virtual
        clock is adopted, and — when the target exposes plans — the
        per-operator probe tallies are collected for polling.  Returns
        ``target``.
        """
        metrics = getattr(target, "metrics", target)
        if self._inner is not None:
            self._inner.attach(metrics)
        # Settle the old attachment's outstanding delta before switching.
        self._flush_ops(self.phase)
        if metrics.counts:
            by = self._ops.setdefault(self.phase, {})
            for op, n in metrics.counts.items():
                by[op] = by.get(op, 0) + n
        self._metrics = metrics
        self._base = dict(metrics.counts)
        self._clock = metrics.clock
        metrics.tracer = self
        if target is not metrics:
            self._strategy = target
            self._collect_probe_sources()
        return target

    def _collect_probe_sources(self) -> None:
        """(Re)build the list of live-plan operators whose tallies we poll.

        Settles outstanding deltas of the outgoing operator set first, so
        no probe is lost across a plan transition.  Selectivity series are
        registered lazily at the first polled probe, keyed by membership
        label — an operator rebuilt by a transition or a recovery
        continues the *same* series.
        """
        strategy = self._strategy
        if strategy is None:
            return
        self._poll_probes()
        sources: List[List[Any]] = []
        seen: set = set()
        for plan in _live_plans(strategy):
            for op in plan.operators():
                if id(op) in seen:
                    continue
                seen.add(id(op))
                sources.append([op, _operator_label(op), None, op.probes, op.hits])
        # Eddy strategies (CACQ) have no physical plans — their SteMs
        # carry the same native probes/hits tallies, labeled per stream.
        stems = getattr(strategy, "stems", None)
        if stems:
            for stream in sorted(stems):
                stem = stems[stream]
                if id(stem) in seen:
                    continue
                seen.add(id(stem))
                sources.append([stem, stem.stream, None, stem.probes, stem.hits])
        self._probe_sources = sources

    def _poll_probes(self) -> None:
        """Fold probe-tally deltas of every source into its detector."""
        sel = self._sel
        for src in self._probe_sources:
            op = src[0]
            probes = op.probes
            n = probes - src[3]
            if not n:
                continue
            hits = op.hits
            entry = src[2]
            if entry is None:
                entry = sel.get(src[1])
                if entry is None:
                    entry = self._register_selectivity(src[1])
                src[2] = entry
            if entry[0].push_block(n, hits - src[4]):
                entry[4].inc()
            src[3] = probes
            src[4] = hits

    def _register_selectivity(
        self, label: str
    ) -> Tuple[SelectivityDriftDetector, Gauge, Gauge, Gauge, Counter]:
        detector = SelectivityDriftDetector(
            window=self.selectivity_window,
            block=self.drift_block,
            delta=self.drift_delta,
            threshold=self.drift_threshold,
            min_samples=self.drift_min_samples,
        )
        reg = self.registry
        entry = (
            detector,
            reg.gauge("engine_selectivity", operator=label, **self._labels),
            reg.gauge("engine_selectivity_smoothed", operator=label, **self._labels),
            reg.gauge("engine_drift_flag", operator=label, **self._labels),
            reg.counter("engine_drift_events_total", operator=label, **self._labels),
        )
        self._sel[label] = entry
        return entry

    def _register_stream(self, stream: str) -> None:
        self._stream_rates[stream] = SampledRate(self._rate_samples)
        self._rate_gauges[stream] = (
            self.registry.counter("engine_stream_arrivals_total", stream=stream, **self._labels),
            self.registry.gauge("engine_arrival_rate", stream=stream, **self._labels),
        )

    def _now(self) -> float:
        clock = self._clock
        return clock.now if clock is not None else float(self._arrivals)

    # -- phase scoping ---------------------------------------------------------------

    def set_phase(self, phase: str) -> str:
        prev = self.phase
        if phase != prev:
            self._flush_ops(prev)
            self.phase = phase
        if self._inner is not None:
            self._inner.set_phase(phase)
        return prev

    def _flush_ops(self, phase: str) -> None:
        """Attribute ops counted since the last boundary to ``phase``."""
        metrics = self._metrics
        if metrics is None:
            return
        base = self._base
        by: Optional[Dict[str, int]] = self._ops.get(phase)
        for op, n in metrics.counts.items():
            delta = n - base.get(op, 0)
            if delta:
                if by is None:
                    by = self._ops.setdefault(phase, {})
                by[op] = by.get(op, 0) + delta
                base[op] = n

    # -- hot-path hooks ----------------------------------------------------------------

    def on_count(self, op: str, n: int) -> None:
        # Only reached when an inner tracer wants per-op callbacks (see
        # wants_counts); the hub's own accounting is boundary-delta based.
        if self._inner is not None:
            self._inner.on_count(op, n)

    def arrival(self, tup: "StreamTuple") -> None:
        # Per-arrival hot path: bump a per-stream int, buffer the key,
        # tick the poll countdown.  Everything heavier — the sketch, rate
        # sampling, probe-tally deltas — runs at the poll cadence
        # (:data:`PROBE_POLL_EVERY`) in :meth:`_poll`, so an arrival
        # touches almost no telemetry memory (the overhead gate in
        # :mod:`repro.perf.regress` counts on it).
        arrivals = self._arrivals = self._arrivals + 1
        counts = self._stream_counts
        stream = tup.stream
        try:
            counts[stream] += 1
        except KeyError:
            counts[stream] = 1
            self._register_stream(stream)
        self._key_buf.append(tup.key)
        left = self._poll_left = self._poll_left - 1
        if not left:
            self._poll_left = self._poll_every
            self._poll()
        if self._inner is not None:
            self._inner.arrival(tup)
        if self.snapshot_every and arrivals % self.snapshot_every == 0:
            self.take_snapshot()

    def output(self, tup: "AnyTuple", when: float) -> None:
        self._outputs += 1
        if self._inner is not None:
            self._inner.output(tup, when)

    def poll(self) -> None:
        """Drain the hot-path accumulators now, off-cadence.

        The adaptive cost maintainer (:mod:`repro.optimizer`) calls this
        before reading :meth:`selectivity_sample` so trigger decisions see
        every probe tallied so far, not just up to the last 64-arrival
        poll boundary.  Idempotent and cheap when nothing is outstanding.
        """
        self._poll()

    def _poll(self) -> None:
        """Periodic drain: sketch buffer, rate samples, probe tallies."""
        buf = self._key_buf
        if buf:
            self.topk.offer_all(buf)
            del buf[:]
        now = self._now()
        rates = self._stream_rates
        for stream, n in self._stream_counts.items():
            rates[stream].sample(now, n)
        self._output_rate.sample(now, self._outputs)
        self._poll_probes()

    # -- event hooks -------------------------------------------------------------------

    def transition_start(self, strategy: str, seq: int, **data: Any) -> None:
        # A new plan (or parallel track) is live from here on: re-collect
        # the polled operator set (settling the outgoing set's deltas).
        self._collect_probe_sources()
        if self._inner is not None:
            self._inner.transition_start(strategy, seq, **data)

    def transition_end(self, strategy: str, seq: int, **data: Any) -> None:
        self._transitions_total.inc()
        # Old plans retire here: settle their deltas and poll only the
        # surviving operators from now on.
        self._collect_probe_sources()
        if self._inner is not None:
            self._inner.transition_end(strategy, seq, **data)

    def migration_end(self, strategy: str, **data: Any) -> None:
        if self._inner is not None:
            self._inner.migration_end(strategy, **data)

    def completion(self, op_label: str, key: Any, **data: Any) -> None:
        self._completions_total.inc()
        if self._inner is not None:
            self._inner.completion(op_label, key, **data)

    def promote(self, n: int, **data: Any) -> None:
        if self._inner is not None:
            self._inner.promote(n, **data)

    def demote(self, n: int, **data: Any) -> None:
        if self._inner is not None:
            self._inner.demote(n, **data)

    def checkpoint(self, strategy: str, **data: Any) -> None:
        self._checkpoints_total.inc()
        if self._inner is not None:
            self._inner.checkpoint(strategy, **data)

    def note(self, what: str, **data: Any) -> None:
        if self._inner is not None:
            self._inner.note(what, **data)

    def fault(self, kind: str, **data: Any) -> None:
        self._faults_total.inc()
        if self._inner is not None:
            self._inner.fault(kind, **data)

    def recovery(self, what: str, **data: Any) -> None:
        self._recoveries_total.inc()
        if self._inner is not None:
            self._inner.recovery(what, **data)

    def _register_trigger_series(self) -> None:
        """Resolve the optimizer-trigger instruments (first decision)."""
        if self._trigger_series_ready:
            return
        reg = self.registry
        labels = self._labels
        self._trigger_evaluations = reg.counter("optimizer_trigger_evaluations_total", **labels)
        self._trigger_fires = reg.counter("optimizer_trigger_fires_total", **labels)
        self._trigger_suppressions = reg.counter("optimizer_trigger_suppressions_total", **labels)
        self._trigger_cost_current = reg.gauge("optimizer_cost_current", **labels)
        self._trigger_cost_best = reg.gauge("optimizer_cost_best", **labels)
        self._trigger_series_ready = True

    def trigger(self, action: str, **data: Any) -> None:
        self._register_trigger_series()
        self._trigger_evaluations.inc()
        if action == "fired":
            self._trigger_fires.inc()
        elif action == "suppressed":
            self._trigger_suppressions.inc()
        cost = data.get("current_cost")
        if cost is not None:
            self._trigger_cost_current.set(cost)
        cost = data.get("best_cost")
        if cost is not None:
            self._trigger_cost_best.set(cost)
        if self._inner is not None:
            self._inner.trigger(action, **data)

    def _register_shard_series(self) -> None:
        """Resolve the shard-rebalance instruments (first shard event)."""
        if self._shard_series_ready:
            return
        reg = self.registry
        labels = self._labels
        self._rebalances_total = reg.counter("shard_rebalances_total", **labels)
        self._rebalance_pending = reg.gauge("shard_rebalance_pending", **labels)
        self._keys_retired_total = reg.counter("shard_keys_retired_total", **labels)
        self._keys_settled_total = reg.counter("shard_keys_settled_total", **labels)
        self._moved_tuples_total = reg.counter("shard_moved_tuples_total", **labels)
        self._batches_remaining = reg.gauge("shard_rebalance_batches_remaining", **labels)
        self._batch_latency = reg.histogram("shard_batch_move_latency", **labels)
        self._shard_series_ready = True

    def rebalance_start(self, mode: str, **data: Any) -> None:
        self._register_shard_series()
        self._rebalances_total.inc()
        self._rebalance_pending.set(int(data.get("keys", 0)))
        if self._inner is not None:
            self._inner.rebalance_start(mode, **data)

    def rebalance_end(self, mode: str, **data: Any) -> None:
        self._register_shard_series()
        self._rebalance_pending.set(0)
        self._batches_remaining.set(0)
        if self._inner is not None:
            self._inner.rebalance_end(mode, **data)

    def rebalance_batch_start(self, index: int, total: int, **data: Any) -> None:
        self._register_shard_series()
        self._batches_remaining.set(total - index)
        keys = int(data.get("keys", 0))
        if keys:
            self._rebalance_pending.set(keys)
        if self._inner is not None:
            self._inner.rebalance_batch_start(index, total, **data)

    def rebalance_batch_end(self, index: int, total: int, **data: Any) -> None:
        self._register_shard_series()
        self._batches_remaining.set(total - index - 1)
        duration = data.get("duration")
        if duration is not None:
            self._batch_latency.observe(float(duration))
        if self._inner is not None:
            self._inner.rebalance_batch_end(index, total, **data)

    def shard_move(self, key: Any, src: int, dst: int, **data: Any) -> None:
        self._register_shard_series()
        if data.get("retired"):
            self._keys_retired_total.inc()
        else:
            self._keys_settled_total.inc()
        self._moved_tuples_total.inc(int(data.get("tuples", 0)))
        pending = self._rebalance_pending
        if isinstance(pending.value, (int, float)) and pending.value > 0:
            pending.add(-1)
        if self._inner is not None:
            self._inner.shard_move(key, src, dst, **data)

    # -- materialization ---------------------------------------------------------------

    def sync(self) -> MetricsRegistry:
        """Materialize the hot-path accumulators into registry instruments.

        Idempotent — counters are *set* to the accumulated totals, so
        exposition readers may sync as often as they like.
        """
        self._poll()
        self._flush_ops(self.phase)
        op_counters = self._op_counters
        op_counter = self._register_op_counter
        for phase, by in self._ops.items():
            for op, n in by.items():
                counter = op_counters.get((op, phase))
                if counter is None:
                    counter = op_counter(op, phase)
                counter.value = n
        self._phase_gauge.set(self.phase)
        self._arrivals_total.value = self._arrivals
        for stream, n in self._stream_counts.items():
            total, rate = self._rate_gauges[stream]
            total.value = n
            rate.set(self._stream_rates[stream].rate())
        self._outputs_total.value = self._outputs
        self._output_rate_gauge.set(self._output_rate.rate())
        for entry in self._sel.values():
            detector, estimate, smoothed, flag, _ = entry
            value = detector.estimate()
            if value is not None:
                estimate.set(value)
            ewma = detector.smoothed()
            if ewma is not None:
                smoothed.set(ewma)
            flag.set(1 if detector.drifted else 0)
        self._hot_keys.set(self.topk.to_json())
        return self.registry

    def _register_op_counter(self, op: str, phase: str) -> Counter:
        counter = self.registry.counter(
            "engine_ops_total", op=op, phase=phase, **self._labels
        )
        self._op_counters[(op, phase)] = counter
        return counter

    # -- snapshots ---------------------------------------------------------------------

    def take_snapshot(self) -> Dict[str, Any]:
        """Sync and record one JSONL-able registry snapshot.

        When an inner obs tracer is recording, a compact ``telemetry``
        note is interleaved into its event stream at the same virtual
        time, so the trace timeline shows when each snapshot was cut.
        """
        self.sync()
        snap = registry_snapshot(self.registry, at=self._now())
        self.snapshots.append(snap)
        self._snapshots_total.inc()
        inner = self._inner
        if inner is not None and inner.enabled:
            inner.note(
                "telemetry",
                arrivals=self._arrivals,
                outputs=self._outputs,
                series=len(self.registry),
                drifts=sum(e[0].drift_count for e in self._sel.values()),
            )
        return snap

    # -- introspection -----------------------------------------------------------------

    def selectivity_of(self, operator_label: str) -> Optional[float]:
        entry = self._sel.get(operator_label)
        return entry[0].estimate() if entry is not None else None

    def selectivity_sample(self, operator_label: str) -> Optional[Tuple[int, float]]:
        """``(windowed probe count, estimate)`` of one series, or None.

        The probe count is the weight the cost maintainer uses to
        aggregate the same operator's series across shard hubs.
        """
        entry = self._sel.get(operator_label)
        if entry is None:
            return None
        estimate = entry[0].estimate()
        if estimate is None:
            return None
        return entry[0].count, estimate

    def drifted(self, operator_label: Optional[str] = None) -> bool:
        """Latched drift flag of one operator (or any, when omitted)."""
        if operator_label is not None:
            entry = self._sel.get(operator_label)
            return entry[0].drifted if entry is not None else False
        return any(e[0].drifted for e in self._sel.values())

    def drift_events(self) -> int:
        return sum(e[0].drift_count for e in self._sel.values())

    def clear_drift(self) -> None:
        for entry in self._sel.values():
            entry[0].clear()

    def selectivities(self) -> Dict[str, Optional[float]]:
        return {label: e[0].estimate() for label, e in sorted(self._sel.items())}

    def arrival_rates(self) -> Dict[str, float]:
        """Per-stream arrival rates (tuples per virtual-time unit)."""
        return {
            stream: rate.rate()
            for stream, rate in sorted(self._stream_rates.items())
        }

    @property
    def arrivals_seen(self) -> int:
        """Total arrivals this hub has observed (the shard-load signal the
        optimizer's rebalance trigger differences per evaluation window)."""
        return self._arrivals


class ShardTelemetry:
    """One shared registry over a :class:`ShardedExecutor`'s workers.

    Attaches a labeled :class:`TelemetryTracer` to every live worker and
    one to the coordinator (which sees rebalance/fault events and the
    external-time axis), then registers itself on the executor so
    :meth:`~repro.shard.executor.ShardedExecutor.recover_shard`
    re-attaches the rebuilt worker — recovery *re-registers* its series
    idempotently instead of orphaning them.
    """

    def __init__(
        self,
        executor: "ShardedExecutor",
        registry: Optional[MetricsRegistry] = None,
        inner: Optional[Tracer] = None,
        snapshot_every: int = 0,
        **tracer_options: Any,
    ):
        self.executor = executor
        self.registry = registry if registry is not None else MetricsRegistry()
        self._options = tracer_options
        self.coordinator = TelemetryTracer(
            self.registry,
            strategy=executor.name,
            inner=inner,
            snapshot_every=snapshot_every,
            **tracer_options,
        )
        self.coordinator.attach(executor.metrics)
        self.workers: Dict[int, TelemetryTracer] = {}
        for shard, worker in enumerate(executor.workers):
            if worker is not None:
                self._attach_worker(shard, worker)
        executor.telemetry = self

    def _attach_worker(self, shard: int, worker: "ShardWorker") -> TelemetryTracer:
        tracer = TelemetryTracer(
            self.registry,
            strategy=self.executor.strategy_name,
            shard=shard,
            **self._options,
        )
        tracer.attach(worker.strategy)
        self.workers[shard] = tracer
        return tracer

    def on_worker_recovered(self, shard: int, worker: "ShardWorker") -> None:
        """Crash-recovery hook: re-attach and re-register the shard's series."""
        self._attach_worker(shard, worker)

    def on_worker_added(self, shard: int, worker: "ShardWorker") -> None:
        """Scale-out hook: give the freshly spun-up worker its own hub.

        A re-occupied shard id (scale-out after scale-in) gets a fresh
        attachment over the existing series — the registry is labeled by
        shard, so the new incarnation continues the old id's series, same
        as crash recovery does.
        """
        self._attach_worker(shard, worker)

    def on_worker_retired(self, shard: int) -> None:
        """Scale-in hook: stop syncing the retired worker's hub.

        Its series stay in the registry (history is part of the story the
        dashboard tells); they just stop advancing.
        """
        self.workers.pop(shard, None)

    def sync(self) -> MetricsRegistry:
        """Materialize every hub into the shared registry."""
        self.coordinator.sync()
        for tracer in self.workers.values():
            tracer.sync()
        return self.registry

    def take_snapshot(self) -> Dict[str, Any]:
        self.sync()
        return self.coordinator.take_snapshot()

    def hot_keys(self, shard: int, k: int = 10) -> List[Tuple[Any, int, int]]:
        tracer = self.workers.get(shard)
        return tracer.topk.top(k) if tracer is not None else []
