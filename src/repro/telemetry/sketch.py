"""Space-saving top-k hot-key sketch (Metwally et al., deterministic).

The shard partitioner's skewed assignments concentrate hot keys on few
shards (docs/SHARDING.md); quantifying *which* keys are hot — per shard,
live, in bounded memory — is what lets a rebalance target the actual
hotspot instead of guessing.  The space-saving algorithm keeps exactly
``capacity`` monitored keys: a hit on a monitored key increments its
count; a miss evicts a current minimum-count key and inherits its count
as the newcomer's error bound.  Guarantees: every true top-k key with
frequency above ``min_count`` is monitored, and ``count - error`` is a
lower bound on the true frequency.

Determinism and speed both come from the slot layout: cells live in
parallel ``keys``/``counts``/``errors`` lists, and eviction takes the
*earliest slot* among the minimum-count cells (``min`` + ``index`` over a
plain int list — C speed, no per-cell comparison objects).  Slot
assignment is a pure function of the offered stream, so two runs over
the same stream produce identical sketches — the property every repro
structure must satisfy (DESIGN.md substitution table) — while ``offer``
stays cheap enough for the per-arrival hot path (the telemetry overhead
gate counts on it).  :meth:`top` additionally orders its *report* by
``(count desc, stable hash, repr)`` so rendered rankings are stable too.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.shard.partition import stable_hash


class SpaceSavingSketch:
    """Top-k frequent-key summary in ``capacity`` cells."""

    __slots__ = ("capacity", "total", "_slot", "_keys", "_counts", "_errors")

    def __init__(self, capacity: int = 32):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: Total observations offered.
        self.total = 0
        self._slot: Dict[Any, int] = {}
        self._keys: List[Any] = []
        self._counts: List[int] = []
        self._errors: List[int] = []

    def offer(self, key: Any, n: int = 1) -> None:
        """Record ``n`` occurrences of ``key``."""
        if n <= 0:
            return
        self.total += n
        slot = self._slot
        i = slot.get(key)
        counts = self._counts
        if i is not None:
            counts[i] += n
            return
        if len(counts) < self.capacity:
            slot[key] = len(counts)
            self._keys.append(key)
            counts.append(n)
            self._errors.append(0)
            return
        floor = min(counts)
        i = counts.index(floor)
        del slot[self._keys[i]]
        slot[key] = i
        self._keys[i] = key
        counts[i] = floor + n
        self._errors[i] = floor

    def offer_all(self, keys: Iterable[Any]) -> None:
        """Record one occurrence of every key in ``keys``.

        The batch entry point for callers that buffer keys on their hot
        path and drain periodically (the telemetry hub): the monitored
        fast path runs with hoisted locals, one pass over the buffer.
        """
        slot = self._slot
        counts = self._counts
        offer = self.offer
        total = 0
        for key in keys:
            i = slot.get(key)
            if i is not None:
                counts[i] += 1
                total += 1
            else:
                offer(key)
        self.total += total

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Any) -> bool:
        return key in self._slot

    def count_of(self, key: Any) -> int:
        """Estimated count (upper bound) of ``key``; 0 if unmonitored."""
        i = self._slot.get(key)
        return self._counts[i] if i is not None else 0

    def guaranteed_count(self, key: Any) -> int:
        """Lower bound on the true count of ``key`` (count minus error)."""
        i = self._slot.get(key)
        return self._counts[i] - self._errors[i] if i is not None else 0

    def top(self, k: int) -> List[Tuple[Any, int, int]]:
        """The ``k`` heaviest monitored keys as ``(key, count, error)``.

        Sorted by descending count with deterministic tie-breaking
        (stable hash, then repr — platform- and hash-seed-independent).
        """
        if k <= 0:
            return []
        ranked = sorted(
            zip(self._keys, self._counts, self._errors),
            key=lambda cell: (-cell[1], stable_hash(cell[0]), repr(cell[0])),
        )
        return ranked[:k]

    def to_json(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "top": [
                {"key": repr(key), "count": count, "error": error}
                for key, count, error in self.top(self.capacity)
            ],
        }
