"""Exposition: Prometheus-style text rendering, JSONL snapshots, diffs.

Readers of the registry come in three shapes, all built on
:meth:`~repro.telemetry.registry.MetricsRegistry.collect` so they can
never disagree with each other:

* :func:`render_prometheus` — the standard ``# TYPE`` + ``name{labels}
  value`` text format, suitable for a scrape endpoint or a CI artifact.
  Non-numeric gauges (the current phase, the hot-key sketch) are encoded
  the conventional way: strings become info-style series with the value
  as a label, structured values become per-field sub-series.

* :func:`registry_snapshot` / :class:`SnapshotLog` — JSON snapshots of
  every series at a virtual timestamp; a log of them serializes to JSONL
  (one object per line, ``kind: "telemetry_snapshot"``) that interleaves
  cleanly with the obs trace format (:mod:`repro.obs.tracer` ignores
  unknown kinds, and :func:`load_snapshots` ignores trace events).

* :func:`diff_snapshots` — the snapshot-diff report the dashboard's
  ``--diff`` mode prints: added/removed series and changed values
  between two snapshots, sorted, one line each.

Everything here is deterministic: sorted series order, sorted JSON keys,
virtual timestamps only (JISC001 bans wall clocks in ``src/repro``).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
    Windowed,
    series_name,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    pass

SNAPSHOT_KIND = "telemetry_snapshot"

#: Prometheus metric types by instrument kind.
_PROM_TYPE = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "summary",
    "windowed": "gauge",
}


def _fmt(value: float) -> str:
    """Numeric rendering: integers without a trailing ``.0``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _label_body(labels: Iterable[Tuple[str, str]]) -> str:
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{{{body}}}" if body else ""


def _render_instrument(full: str, ins: Instrument) -> List[str]:
    labels = ins.labels
    base = _label_body(labels)
    if isinstance(ins, Counter):
        return [f"{full}{base} {_fmt(ins.value)}"]
    if isinstance(ins, Gauge):
        value = ins.value
        if isinstance(value, (int, float)):
            return [f"{full}{base} {_fmt(value)}"]
        if isinstance(value, str):
            # Info-style: the string becomes a label, the sample is 1.
            return [f"{full}{_label_body(tuple(labels) + (('value', value),))} 1"]
        # Structured gauge (e.g. the hot-key sketch): numeric fields only.
        lines = []
        if isinstance(value, dict):
            for field in sorted(value):
                v = value[field]
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    lines.append(f"{full}_{field}{base} {_fmt(v)}")
        return lines
    if isinstance(ins, Histogram):
        summary = ins.summary()
        lines = [
            f"{full}_count{base} {_fmt(summary['count'])}",
            f"{full}_sum{base} {_fmt(ins.hist.total)}",
        ]
        for q, field in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            q_labels = _label_body(tuple(labels) + (("quantile", q),))
            lines.append(f"{full}{q_labels} {_fmt(summary[field])}")
        return lines
    if isinstance(ins, Windowed):
        lines = [
            f"{full}_count{base} {_fmt(len(ins))}",
            f"{full}_dropped{base} {_fmt(ins.dropped)}",
        ]
        numeric = ins.numeric()
        if numeric and len(numeric) == len(ins):
            lines.append(f"{full}_mean{base} {_fmt(ins.mean())}")
            lines.append(f"{full}_last{base} {_fmt(numeric[-1])}")
        return lines
    return []  # pragma: no cover - all kinds handled above


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render every series in Prometheus text exposition format."""
    lines: List[str] = []
    last_name: Optional[str] = None
    for ins in registry.collect():
        full = prefix + ins.name
        if ins.name != last_name:
            lines.append(f"# TYPE {full} {_PROM_TYPE[ins.kind]}")
            last_name = ins.name
        lines.extend(_render_instrument(full, ins))
    return "\n".join(lines) + "\n"


# -- snapshots -------------------------------------------------------------------------


def registry_snapshot(registry: MetricsRegistry, at: float = 0.0) -> Dict[str, Any]:
    """One JSON-shaped snapshot of every series at virtual time ``at``."""
    return {
        "kind": SNAPSHOT_KIND,
        "at": at,
        "series": {ins.series: ins.value_json() for ins in registry.collect()},
    }


def diff_snapshots(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    """Human-readable changes between two snapshots, one line each.

    Added series are prefixed ``+``, removed ``-``, changed ``~`` with the
    old and new value.  Unchanged series produce no line.
    """
    sa: Dict[str, Any] = a.get("series", {})
    sb: Dict[str, Any] = b.get("series", {})
    lines: List[str] = []
    for name in sorted(set(sa) | set(sb)):
        if name not in sa:
            lines.append(f"+ {name} = {json.dumps(sb[name], sort_keys=True)}")
        elif name not in sb:
            lines.append(f"- {name}")
        elif sa[name] != sb[name]:
            old = json.dumps(sa[name], sort_keys=True)
            new = json.dumps(sb[name], sort_keys=True)
            lines.append(f"~ {name}: {old} -> {new}")
    return lines


class SnapshotLog:
    """An append-only sequence of registry snapshots, JSONL-serializable."""

    __slots__ = ("snapshots",)

    def __init__(self) -> None:
        self.snapshots: List[Dict[str, Any]] = []

    def append(self, snapshot: Dict[str, Any]) -> None:
        self.snapshots.append(snapshot)

    def take(self, registry: MetricsRegistry, at: float = 0.0) -> Dict[str, Any]:
        snap = registry_snapshot(registry, at=at)
        self.append(snap)
        return snap

    def __len__(self) -> int:
        return len(self.snapshots)

    def last(self) -> Optional[Dict[str, Any]]:
        return self.snapshots[-1] if self.snapshots else None

    def to_jsonl(self) -> str:
        return (
            "\n".join(
                json.dumps(snap, sort_keys=True, default=str)
                for snap in self.snapshots
            )
            + "\n"
            if self.snapshots
            else ""
        )

    def export_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def diffs(self) -> List[List[str]]:
        """Pairwise diffs between consecutive snapshots."""
        snaps = self.snapshots
        return [diff_snapshots(snaps[i - 1], snaps[i]) for i in range(1, len(snaps))]


def load_snapshots(path: str) -> List[Dict[str, Any]]:
    """Load snapshots from a JSONL file, skipping non-snapshot lines.

    Tolerates mixed files: an obs trace with interleaved snapshots loads
    the snapshots only.
    """
    out: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if isinstance(obj, dict) and obj.get("kind") == SNAPSHOT_KIND:
                out.append(obj)
    return out
