"""Terminal dashboard over the live telemetry registry.

``python -m repro.telemetry.dash`` drives a deterministic 4-shard demo
scenario — a selectivity-drift workload with a mid-run rebalance — and
renders the registry as a terminal dashboard while it streams: per-shard
phase, arrivals, outputs, arrival rate, drift flags, hottest keys, and
rebalance progress.  Everything rendered comes from
:class:`~repro.telemetry.hub.ShardTelemetry`; the dashboard holds no
state of its own, so what it shows is exactly what exposition exports.

Modes
-----

* default — re-render a frame every ``--frame-every`` arrivals (ANSI
  redraw; ``--no-clear`` appends frames instead).
* ``--once`` — run the scenario to completion and print a single frame
  (the CI smoke mode).
* ``--diff A [B]`` — snapshot-diff report: with two files, diff the last
  snapshot of each; with one file holding several snapshots, print the
  consecutive diffs.

``--export`` writes the collected JSONL snapshots, ``--prom`` writes the
final Prometheus exposition (both useful as CI artifacts).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.shard.executor import RebalanceEvent, ShardedExecutor, ShardEvent
from repro.shard.partition import balanced_assignment
from repro.streams.schema import Schema
from repro.telemetry.expo import (
    diff_snapshots,
    load_snapshots,
    render_prometheus,
)
from repro.telemetry.hub import ShardTelemetry, TelemetryTracer
from repro.workloads.drift import SelectivityDriftWorkload

#: ANSI: cursor home + clear-to-end (avoids full-screen flicker).
_CLEAR = "\x1b[H\x1b[J"


def demo_events(
    shards: int,
    tuples: int,
    window: int,
    seed: int,
) -> Tuple[Schema, List[ShardEvent]]:
    """The dashboard's deterministic scenario: drift plus one rebalance.

    Three streams, two drift phases (the selective stream flips at the
    midpoint, firing the drift detectors), and a bucket-rotation
    rebalance scheduled just after the flip so the rebalance-progress
    column has something to show.
    """
    streams = ("S0", "S1", "S2")
    half = max(1, tuples // 2)
    workload = SelectivityDriftWorkload(
        streams,
        phases=[(half, "S1"), (tuples - half, "S2")],
        base_domain=24,
        scatter=8,
        seed=seed,
    )
    schema = Schema.uniform(streams, window)
    events: List[ShardEvent] = list(workload.materialize())
    # Rotate every bucket one shard to the right shortly after the drift
    # point: plenty of live keys are mid-window, so the lazy session stays
    # visibly pending for a stretch of the second phase.
    rotation = {
        bucket: (shard + 1) % shards
        for bucket, shard in balanced_assignment(64, shards).items()
    }
    events.insert(half + window, RebalanceEvent(rotation))
    return schema, events


def _fmt_rate(value: float) -> str:
    return f"{value:8.3f}"


def _drift_cell(tracer: TelemetryTracer) -> str:
    flagged = sorted(
        label for label, entry in tracer._sel.items() if entry[0].drifted
    )
    if not flagged:
        return "-"
    return "DRIFT " + ",".join(flagged)


def _hot_cell(tracer: TelemetryTracer, k: int = 3) -> str:
    top = tracer.topk.top(k)
    if not top:
        return "-"
    return " ".join(f"{key!r}x{count}" for key, count, _ in top)


def render_frame(telemetry: ShardTelemetry, processed: int, total: int) -> str:
    """One dashboard frame (plain text, trailing newline)."""
    telemetry.sync()
    executor = telemetry.executor
    registry = telemetry.registry
    coord = telemetry.coordinator
    lines: List[str] = []
    lines.append(
        f"repro telemetry — {executor.name} — "
        f"{processed}/{total} arrivals — {len(registry)} series"
    )
    pending = executor.pending_keys()
    session = executor.session
    rebalance = (
        f"rebalance: {session.mode} session, {len(pending)} keys pending"
        if session is not None
        else f"rebalance: idle ({executor.rebalances} completed)"
    )
    settled = sum(1 for m in executor.moves if not m.retired)
    retired = sum(1 for m in executor.moves if m.retired)
    lines.append(f"{rebalance}; moves settled={settled} retired={retired}")
    drifts = sum(
        tracer.drift_events() for tracer in telemetry.workers.values()
    ) + coord.drift_events()
    lines.append(
        f"outputs: {len(executor.outputs)} merged; "
        f"drift events: {drifts}; virtual makespan: {executor.makespan():.1f}"
    )
    evaluations = sum(
        i.value for i in registry.with_name("optimizer_trigger_evaluations_total")
    )
    if evaluations:
        # An adaptive loop is attached: show its decision tallies and the
        # live cost gap it is watching (docs/ADAPTIVITY.md).
        fires = sum(i.value for i in registry.with_name("optimizer_trigger_fires_total"))
        suppressed = sum(
            i.value for i in registry.with_name("optimizer_trigger_suppressions_total")
        )
        costs = [
            (i.value for i in registry.with_name(name))
            for name in ("optimizer_cost_current", "optimizer_cost_best")
        ]
        current, best = (max(values, default=0.0) for values in costs)
        lines.append(
            f"adaptive: {evaluations} evaluations, {fires} fired, "
            f"{suppressed} suppressed; cost current={current:.3f} best={best:.3f}"
        )
    lines.append("")
    header = (
        f"{'shard':>5}  {'phase':<11} {'arrivals':>8} {'outputs':>8} "
        f"{'rate':>8}  {'drift':<22} hot keys"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for shard in sorted(telemetry.workers):
        tracer = telemetry.workers[shard]
        rate = sum(tracer.arrival_rates().values())
        lines.append(
            f"{shard:>5}  {tracer.phase:<11} {tracer._arrivals:>8} "
            f"{tracer._outputs:>8} {_fmt_rate(rate)}  "
            f"{_drift_cell(tracer):<22} {_hot_cell(tracer)}"
        )
    return "\n".join(lines) + "\n"


def run_dashboard(
    shards: int = 4,
    tuples: int = 2000,
    window: int = 48,
    seed: int = 0,
    strategy: str = "jisc",
    frame_every: int = 200,
    snapshot_every: int = 0,
    once: bool = False,
) -> Iterator[Tuple[str, ShardTelemetry]]:
    """Yield dashboard frames while driving the demo scenario.

    ``once`` yields a single final frame; otherwise one frame per
    ``frame_every`` arrivals plus the final one.
    """
    schema, events = demo_events(shards, tuples, window, seed)
    executor = ShardedExecutor(
        schema,
        schema.names,
        num_shards=shards,
        strategy=strategy,
        inter_arrival=1.0,
    )
    telemetry = ShardTelemetry(executor, snapshot_every=snapshot_every)
    total = sum(1 for e in events if not isinstance(e, RebalanceEvent))
    processed = 0
    for event in events:
        if isinstance(event, RebalanceEvent):
            executor.rebalance(event.assignment, event.mode)
            continue
        executor.process(event)
        processed += 1
        if not once and frame_every > 0 and processed % frame_every == 0:
            yield render_frame(telemetry, processed, total), telemetry
    yield render_frame(telemetry, processed, total), telemetry


def _run_diff(paths: Sequence[str]) -> int:
    if len(paths) == 2:
        a = load_snapshots(paths[0])
        b = load_snapshots(paths[1])
        if not a or not b:
            print("diff: both files must contain telemetry snapshots")
            return 2
        pairs: List[Tuple[str, Dict[str, Any], Dict[str, Any]]] = [
            (f"{paths[0]} -> {paths[1]}", a[-1], b[-1])
        ]
    else:
        snaps = load_snapshots(paths[0])
        if len(snaps) < 2:
            print("diff: need two files, or one file with >= 2 snapshots")
            return 2
        pairs = [
            (f"snapshot {i - 1} -> {i}", snaps[i - 1], snaps[i])
            for i in range(1, len(snaps))
        ]
    for title, sa, sb in pairs:
        print(f"== {title} (at {sa.get('at')} -> {sb.get('at')})")
        lines = diff_snapshots(sa, sb)
        if not lines:
            print("(no changes)")
        for line in lines:
            print(line)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.dash",
        description="Live terminal dashboard over the telemetry registry.",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--tuples", type=int, default=2000)
    parser.add_argument("--window", type=int, default=48)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--strategy",
        default="jisc",
        help="worker strategy of the demo executor (default: jisc)",
    )
    parser.add_argument(
        "--frame-every",
        type=int,
        default=200,
        help="arrivals between frames (live mode)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=500,
        help="arrivals between registry snapshots (0 disables)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="run to completion and print a single frame (CI smoke mode)",
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing in place",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        help="write collected JSONL snapshots to PATH",
    )
    parser.add_argument(
        "--prom",
        metavar="PATH",
        help="write the final Prometheus exposition to PATH",
    )
    parser.add_argument(
        "--diff",
        nargs="+",
        metavar="SNAPSHOTS",
        help="snapshot-diff report: two files, or one file with >= 2 snapshots",
    )
    args = parser.parse_args(argv)

    if args.diff:
        if len(args.diff) > 2:
            parser.error("--diff takes one or two snapshot files")
        return _run_diff(args.diff)

    telemetry: Optional[ShardTelemetry] = None
    clear = not (args.once or args.no_clear)
    for frame, telemetry in run_dashboard(
        shards=args.shards,
        tuples=args.tuples,
        window=args.window,
        seed=args.seed,
        strategy=args.strategy,
        frame_every=args.frame_every,
        snapshot_every=args.snapshot_every,
        once=args.once,
    ):
        if clear:
            sys.stdout.write(_CLEAR)
        sys.stdout.write(frame)
        sys.stdout.flush()
    if telemetry is not None:
        if args.export:
            telemetry.coordinator.take_snapshot()
            telemetry.coordinator.snapshots.export_jsonl(args.export)
            print(f"snapshots -> {args.export}")
        if args.prom:
            telemetry.sync()
            with open(args.prom, "w") as fh:
                fh.write(render_prometheus(telemetry.registry))
            print(f"exposition -> {args.prom}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
