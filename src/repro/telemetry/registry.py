"""Labeled metrics registry: the live-series store of the telemetry layer.

The registry is the single place every runtime series lives.  Instruments
are *registered once* at engine/module init (enforced by lint rule
JISC007) and *updated* from hot paths; readers — the Prometheus-style
text exposition, the JSONL snapshot writer, and the terminal dashboard
(:mod:`repro.telemetry.dash`) — only ever walk :meth:`MetricsRegistry.collect`,
so anything the engine publishes is exported with no second bookkeeping
path that could disagree (docs/TELEMETRY.md).

Four instrument kinds, all deterministic and wall-clock-free:

* :class:`Counter` — monotone count (operations, arrivals, drift events).
* :class:`Gauge` — last-written value (phase, pending keys, estimates).
* :class:`Histogram` — bounded geometric buckets (latencies), backed by
  :class:`repro.obs.histogram.LatencyHistogram`.
* :class:`Windowed` — bounded ring of ``(x, value)`` samples with an
  eviction count, for sliding-window series (rates, monitor snapshots).

Labels are plain ``str -> str`` pairs; the conventional keys are
``operator``, ``strategy``, ``shard`` and ``phase``.  ``(name, labels)``
identifies a series: registering the same pair twice returns the same
instrument (so re-registration after crash recovery is idempotent),
registering the same pair as a different kind is an error.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Mapping, Optional, Tuple, Type, TypeVar

from repro.obs.histogram import LatencyHistogram

#: Canonical label form: pairs sorted by label key.
LabelSet = Tuple[Tuple[str, str], ...]

#: Registry key of one series.
SeriesKey = Tuple[str, LabelSet]


def canonical_labels(labels: Mapping[str, Any]) -> LabelSet:
    """Sort labels by key and stringify values (stable series identity)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def series_name(name: str, labels: LabelSet) -> str:
    """Flat ``name{k="v",...}`` form used by exposition and snapshots."""
    if not labels:
        return name
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{body}}}"


class Instrument:
    """Base of all registered series: a name, canonical labels, a kind."""

    kind = "abstract"

    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels

    @property
    def series(self) -> str:
        return series_name(self.name, self.labels)

    def value_json(self) -> Any:
        """JSON-shaped current value (snapshot payload)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.series})"


class Counter(Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += n

    def value_json(self) -> Any:
        return self.value


class Gauge(Instrument):
    """Last-written value; may be numeric or a short string (e.g. a phase)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.value: Any = 0.0

    def set(self, value: Any) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value = float(self.value) + delta

    def value_json(self) -> Any:
        return self.value


class Histogram(Instrument):
    """Geometric-bucket histogram over non-negative samples."""

    kind = "histogram"

    __slots__ = ("hist",)

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        least: float = 1.0,
        growth: float = 1.25,
        n_buckets: int = 96,
    ):
        super().__init__(name, labels)
        self.hist = LatencyHistogram(least=least, growth=growth, n_buckets=n_buckets)

    def observe(self, value: float) -> None:
        self.hist.add(value)

    def summary(self) -> Dict[str, float]:
        return self.hist.summary()

    def value_json(self) -> Any:
        return self.summary()


class Windowed(Instrument):
    """Bounded ring of ``(x, value)`` samples with eviction accounting.

    ``x`` is the sample's position on whatever axis the publisher uses
    (arrival index, virtual time); ``value`` is usually a float but may be
    any object (the query monitor stores whole snapshots).  When the ring
    is full the oldest sample is evicted and ``dropped`` counts it — the
    same contract as the obs trace ring, so truncation is never silent.
    """

    kind = "windowed"

    __slots__ = ("capacity", "samples", "dropped")

    def __init__(self, name: str, labels: LabelSet, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        super().__init__(name, labels)
        self.capacity = capacity
        self.samples: Deque[Tuple[float, Any]] = deque(maxlen=capacity)
        self.dropped = 0

    def push(self, x: float, value: Any) -> None:
        if len(self.samples) == self.capacity:
            self.dropped += 1
        self.samples.append((x, value))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[Any]:
        return [v for _, v in self.samples]

    def last(self) -> Optional[Any]:
        return self.samples[-1][1] if self.samples else None

    def span(self) -> float:
        """Distance between the first and last retained sample's ``x``."""
        if len(self.samples) < 2:
            return 0.0
        return float(self.samples[-1][0]) - float(self.samples[0][0])

    def numeric(self) -> List[float]:
        return [float(v) for _, v in self.samples if isinstance(v, (int, float))]

    def mean(self) -> float:
        values = self.numeric()
        return sum(values) / len(values) if values else 0.0

    def rate(self) -> float:
        """Samples per unit of ``x`` over the retained span (e.g. arrivals
        per virtual time when ``x`` is the virtual clock)."""
        span = self.span()
        if span <= 0:
            return 0.0
        return (len(self.samples) - 1) / span

    def value_json(self) -> Any:
        values = self.numeric()
        out: Dict[str, Any] = {
            "count": len(self.samples),
            "dropped": self.dropped,
            "capacity": self.capacity,
        }
        if values and len(values) == len(self.samples):
            out["mean"] = self.mean()
            out["last"] = values[-1]
        return out


InstrumentT = TypeVar("InstrumentT", bound=Instrument)


class MetricsRegistry:
    """Get-or-create store of labeled instruments.

    Registration is idempotent for an identical ``(name, labels, kind)``
    triple — crash recovery re-registers every series it owned and gets
    the surviving instruments back (docs/TELEMETRY.md, "recovery").
    Asking for an existing series under a different kind raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[SeriesKey, Instrument] = {}

    # -- registration ------------------------------------------------------------------

    def _get_or_create(
        self, cls: Type[InstrumentT], name: str, labels: Mapping[str, Any], **kwargs: Any
    ) -> InstrumentT:
        if not name:
            raise ValueError("instrument name must be non-empty")
        key: SeriesKey = (name, canonical_labels(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"series {series_name(*key)} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        instrument = cls(name, key[1], **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        least: float = 1.0,
        growth: float = 1.25,
        n_buckets: int = 96,
        **labels: Any,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, least=least, growth=growth, n_buckets=n_buckets
        )

    def windowed(self, name: str, capacity: int = 1024, **labels: Any) -> Windowed:
        return self._get_or_create(Windowed, name, labels, capacity=capacity)

    # -- reading -----------------------------------------------------------------------

    def collect(self) -> Iterator[Instrument]:
        """All instruments, sorted by (name, labels) for stable output."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def get(self, name: str, **labels: Any) -> Optional[Instrument]:
        return self._instruments.get((name, canonical_labels(labels)))

    def with_name(self, name: str) -> List[Instrument]:
        return [ins for ins in self.collect() if ins.name == name]

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._instruments)
