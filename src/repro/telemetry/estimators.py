"""Streaming estimators: windowed selectivity, arrival rate, EWMA, drift.

These are the signals the future ``repro.optimizer`` transition trigger
consumes (ROADMAP, "close the optimizer loop"): Liu/Ives/Loo maintain
plan costs incrementally from *continuously observed* selectivities
(PAPERS.md, arxiv 1409.6288), and Megaphone paces migrations from live
latency/rate measurements (arxiv 1812.01371).  Everything here is O(1)
per observation, bounded-memory, and wall-clock-free.

* :class:`WindowedRatio` — exact hit ratio over the last *W* Bernoulli
  observations (per-operator selectivity over the last N probes).
* :class:`ArrivalRateEstimator` — arrivals per unit virtual time over a
  sliding sample window.
* :class:`Ewma` — exponentially weighted moving average.
* :class:`PageHinkley` — two-sided Page–Hinkley mean-shift test; combined
  with an EWMA baseline in :class:`SelectivityDriftDetector`, which is
  the drift flag the dashboard renders and the trigger input the
  optimizer loop will consume.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class WindowedRatio:
    """Exact ratio of true observations over the last ``window`` samples.

    The ring holds one bit per observation, so ``estimate()`` equals a
    brute-force recompute over the retained window exactly (the property
    tests/test_telemetry_estimators.py certifies against drift
    workloads).
    """

    __slots__ = ("window", "_bits", "_hits", "total", "total_hits")

    def __init__(self, window: int = 5000):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._bits: Deque[int] = deque(maxlen=window)
        self._hits = 0
        #: Lifetime observation count (not windowed), for warm-up gating.
        self.total = 0
        self.total_hits = 0

    def observe(self, hit: bool) -> None:
        bits = self._bits
        if len(bits) == self.window:
            self._hits -= bits[0]
        bit = 1 if hit else 0
        bits.append(bit)
        self._hits += bit
        self.total += 1
        self.total_hits += bit

    @property
    def count(self) -> int:
        """Observations currently inside the window."""
        return len(self._bits)

    def estimate(self) -> Optional[float]:
        """Windowed ratio, or ``None`` before the first observation."""
        n = len(self._bits)
        if n == 0:
            return None
        return self._hits / n

    def lifetime(self) -> Optional[float]:
        if self.total == 0:
            return None
        return self.total_hits / self.total


class ArrivalRateEstimator:
    """Arrivals per unit of virtual time over the last ``window`` arrivals."""

    __slots__ = ("window", "_times", "total")

    def __init__(self, window: int = 1024):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._times: Deque[float] = deque(maxlen=window)
        self.total = 0

    def observe(self, t: float) -> None:
        self._times.append(t)
        self.total += 1

    def rate(self) -> float:
        """Arrivals per time unit over the retained span (0 when flat)."""
        times = self._times
        if len(times) < 2:
            return 0.0
        span = times[-1] - times[0]
        if span <= 0:
            return 0.0
        return (len(times) - 1) / span


class SampledRate:
    """Rate from periodic ``(time, cumulative count)`` samples.

    The caller keeps a plain cumulative counter on its hot path and
    samples it here at a coarse cadence (the telemetry hub does so every
    :data:`~repro.telemetry.hub.PROBE_POLL_EVERY` arrivals); the rate is
    the count delta over the time span of the retained samples.  Same
    estimate as :class:`ArrivalRateEstimator` over the same span, at zero
    per-event cost.
    """

    __slots__ = ("window", "_samples")

    def __init__(self, window: int = 64):
        if window < 2:
            raise ValueError("window must be at least 2 samples")
        self.window = window
        self._samples: Deque[Tuple[float, int]] = deque(maxlen=window)

    def sample(self, t: float, count: int) -> None:
        samples = self._samples
        if samples and samples[-1][0] >= t:
            # Re-sampling the same instant (e.g. repeated sync() calls
            # between events) replaces the last point instead of flooding
            # the window with duplicates.
            samples[-1] = (t, count)
            return
        samples.append((t, count))

    def rate(self) -> float:
        """Events per time unit over the retained span (0 when flat)."""
        samples = self._samples
        if len(samples) < 2:
            return 0.0
        t0, c0 = samples[0]
        t1, c1 = samples[-1]
        span = t1 - t0
        if span <= 0:
            return 0.0
        return (c1 - c0) / span


class DecayedRatio:
    """Exponentially decayed hit ratio over batched (probes, hits) updates.

    ``push(n, h)`` first decays both accumulated totals by ``decay`` and
    then adds the batch, so with ``decay < 1`` old evidence fades and the
    ratio tracks *drifting* selectivities; ``decay == 1`` degenerates to
    the lifetime ratio.  This is the estimator behind
    :class:`repro.plans.optimizer.SelectivityOptimizer` (rebasing it here
    keeps the optimizer loop on one set of telemetry estimators).
    """

    __slots__ = ("decay", "probes", "hits")

    def __init__(self, decay: float = 1.0):
        if not 0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay
        self.probes = 0.0
        self.hits = 0.0

    def push(self, probes: float, hits: float) -> None:
        """Fold in one batch of ``probes`` outcomes of which ``hits`` hit."""
        if probes < 0 or hits < 0:
            raise ValueError("probes and hits must be non-negative")
        if self.decay < 1.0:
            self.probes *= self.decay
            self.hits *= self.decay
        self.probes += probes
        self.hits += hits

    def ratio(self) -> Optional[float]:
        """Decayed hit ratio, or ``None`` before the first probe."""
        if self.probes <= 0:
            return None
        return self.hits / self.probes


class Ewma:
    """Exponentially weighted moving average with bias-corrected start."""

    __slots__ = ("alpha", "value", "count")

    def __init__(self, alpha: float = 0.05):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = None
        self.count = 0

    def update(self, x: float) -> float:
        self.count += 1
        value = self.value
        if value is None:
            value = x
        else:
            value += self.alpha * (x - value)
        self.value = value
        return value


class PageHinkley:
    """Two-sided Page–Hinkley test for a shift in the mean of a stream.

    Classic formulation: maintain the running mean ``x̄_t`` and the
    cumulative deviations ``m_t = Σ (x_i - x̄_i - δ)`` (upward branch) and
    ``m'_t = Σ (x_i - x̄_i + δ)`` (downward branch); drift is declared
    when ``m_t - min m_t > λ`` or ``max m'_t - m'_t > λ``.  ``δ`` absorbs
    per-sample noise (it is subtracted from every deviation), ``λ`` sets
    how much *sustained* deviation constitutes a shift.  ``min_samples``
    suppresses verdicts while the mean estimate is still warming up.

    After firing, the test resets its statistics and starts tracking the
    post-shift regime — a workload with several phase changes fires once
    per change (tests/test_telemetry_estimators.py).
    """

    __slots__ = (
        "delta",
        "threshold",
        "min_samples",
        "count",
        "mean",
        "_up",
        "_up_min",
        "_down",
        "_down_max",
        "fired",
    )

    def __init__(
        self, delta: float = 0.005, threshold: float = 20.0, min_samples: int = 30
    ):
        if delta < 0 or threshold <= 0 or min_samples < 1:
            raise ValueError("need delta >= 0, threshold > 0, min_samples >= 1")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        #: Number of drifts detected so far.
        self.fired = 0
        self._reset_stats()

    def _reset_stats(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._up = 0.0
        self._up_min = 0.0
        self._down = 0.0
        self._down_max = 0.0

    def update(self, x: float, weight: float = 1.0) -> bool:
        """Feed one observation; returns True when a mean shift fired.

        ``weight`` lets a caller feed the mean of ``weight`` underlying
        samples as one observation (the block-aggregated selectivity
        detectors do): the cumulative deviations and the sample count
        advance by ``weight``, so ``delta``/``threshold``/``min_samples``
        keep their per-underlying-sample meaning regardless of blocking.
        """
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.count += weight
        self.mean += (x - self.mean) * (weight / self.count)
        dev = x - self.mean
        self._up += (dev - self.delta) * weight
        self._down += (dev + self.delta) * weight
        if self._up < self._up_min:
            self._up_min = self._up
        if self._down > self._down_max:
            self._down_max = self._down
        if self.count < self.min_samples:
            return False
        if (self._up - self._up_min > self.threshold) or (
            self._down_max - self._down > self.threshold
        ):
            self.fired += 1
            self._reset_stats()
            return True
        return False


class SelectivityDriftDetector:
    """EWMA-smoothed windowed selectivity + Page–Hinkley drift flag.

    Feed it every probe outcome.  Observations accumulate into blocks of
    ``block`` outcomes — per observation the work is two integer adds and
    a compare, cheap enough for the engine's per-probe hot path (the
    telemetry overhead gate counts on it).  Each completed block feeds
    the EWMA baseline and the Page–Hinkley test with the block mean,
    weighted by the block size so ``delta``/``threshold``/``min_samples``
    keep their per-probe meaning.

    The selectivity window retains ``window // block`` completed blocks
    (plus the partial block), so :meth:`estimate` tracks an exact
    recompute of the trailing window to within one block — with
    ``block=1`` (the default) it *is* the exact sliding-window ratio.
    ``drifted`` latches until :meth:`clear` so a dashboard frame rendered
    after the shift still shows the flag.
    """

    __slots__ = (
        "window",
        "block",
        "ewma",
        "ph",
        "drifted",
        "total",
        "total_hits",
        "_blocks",
        "_win_n",
        "_win_h",
        "_cur_n",
        "_cur_h",
    )

    def __init__(
        self,
        window: int = 5000,
        block: int = 1,
        alpha: float = 0.05,
        delta: float = 0.005,
        threshold: float = 20.0,
        min_samples: int = 30,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0 < block <= window:
            raise ValueError("block must be in [1, window]")
        self.window = window
        self.block = block
        self.ewma = Ewma(alpha)
        self.ph = PageHinkley(delta=delta, threshold=threshold, min_samples=min_samples)
        self.drifted = False
        #: Lifetime observation / hit counts (never windowed).
        self.total = 0
        self.total_hits = 0
        self._blocks: Deque[Tuple[int, int]] = deque()
        self._win_n = 0
        self._win_h = 0
        self._cur_n = 0
        self._cur_h = 0

    def observe(self, hit: bool) -> bool:
        """One probe outcome; returns True when its block fired the test."""
        self.total += 1
        n = self._cur_n + 1
        if hit:
            self.total_hits += 1
            self._cur_h += 1
        if n < self.block:
            self._cur_n = n
            return False
        h = self._cur_h
        self._cur_n = 0
        self._cur_h = 0
        return self._flush_block(n, h)

    def push_block(self, n: int, h: int) -> bool:
        """Fold in ``n`` outcomes of which ``h`` hit, as one batch.

        This is the polled-delta entry point (the telemetry hub reads
        operator probe tallies every few arrivals and pushes the deltas);
        batches accumulate until at least ``block`` outcomes are pending,
        then flush exactly like :meth:`observe` blocks do.  Returns True
        when the flushed block fired the drift test.
        """
        if n <= 0 or h < 0 or h > n:
            raise ValueError("need 0 <= h <= n with n > 0")
        self.total += n
        self.total_hits += h
        self._cur_n += n
        self._cur_h += h
        if self._cur_n < self.block:
            return False
        n2, h2 = self._cur_n, self._cur_h
        self._cur_n = 0
        self._cur_h = 0
        return self._flush_block(n2, h2)

    def _flush_block(self, n: int, h: int) -> bool:
        mean = h / n
        self.ewma.update(mean)
        blocks = self._blocks
        blocks.append((n, h))
        win_n = self._win_n + n
        win_h = self._win_h + h
        # Evict whole blocks while the window would still hold ``window``
        # observations without them (blocks may have ragged sizes when fed
        # via push_block, so the retained span is [window, window+block)).
        window = self.window
        while win_n - blocks[0][0] >= window:
            old_n, old_h = blocks.popleft()
            win_n -= old_n
            win_h -= old_h
        self._win_n = win_n
        self._win_h = win_h
        fired = self.ph.update(mean, float(n))
        if fired:
            self.drifted = True
        return fired

    @property
    def count(self) -> int:
        """Observations currently inside the window (incl. partial block)."""
        return self._win_n + self._cur_n

    @property
    def drift_count(self) -> int:
        return self.ph.fired

    def estimate(self) -> Optional[float]:
        """Windowed selectivity, or ``None`` before the first observation."""
        n = self._win_n + self._cur_n
        if n == 0:
            return None
        return (self._win_h + self._cur_h) / n

    def lifetime(self) -> Optional[float]:
        if self.total == 0:
            return None
        return self.total_hits / self.total

    def smoothed(self) -> Optional[float]:
        return self.ewma.value

    def clear(self) -> None:
        self.drifted = False

    def summary(self) -> Tuple[Optional[float], Optional[float], int, bool]:
        """(windowed estimate, EWMA, drifts fired, latched flag)."""
        return (self.estimate(), self.smoothed(), self.drift_count, self.drifted)
