"""Live telemetry: labeled metrics registry, streaming estimators, exposition.

Traces (:mod:`repro.obs`) are post-hoc; telemetry is *live*.  Attach a
:class:`TelemetryTracer` to any strategy (or a :class:`ShardTelemetry`
over a sharded executor) and every instrumentation site the engine
already has — counters, arrivals, outputs, phases, transitions,
rebalances, faults — publishes into one labeled
:class:`MetricsRegistry`, alongside windowed selectivity estimators,
Page–Hinkley drift detectors, arrival-rate estimators and per-shard
hot-key sketches.  Read it back via Prometheus text exposition, JSONL
snapshots, or the terminal dashboard (``python -m repro.telemetry.dash``).
See docs/TELEMETRY.md.
"""

from repro.telemetry.estimators import (
    ArrivalRateEstimator,
    Ewma,
    PageHinkley,
    SampledRate,
    SelectivityDriftDetector,
    WindowedRatio,
)
from repro.telemetry.expo import (
    SnapshotLog,
    diff_snapshots,
    load_snapshots,
    registry_snapshot,
    render_prometheus,
)
from repro.telemetry.hub import ShardTelemetry, TelemetryTracer
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
    Windowed,
    canonical_labels,
    series_name,
)
from repro.telemetry.sketch import SpaceSavingSketch

__all__ = [
    "ArrivalRateEstimator",
    "Counter",
    "Ewma",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "PageHinkley",
    "SampledRate",
    "SelectivityDriftDetector",
    "ShardTelemetry",
    "SnapshotLog",
    "SpaceSavingSketch",
    "TelemetryTracer",
    "Windowed",
    "WindowedRatio",
    "canonical_labels",
    "diff_snapshots",
    "load_snapshots",
    "registry_snapshot",
    "render_prometheus",
    "series_name",
]
