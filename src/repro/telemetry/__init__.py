"""Live telemetry: labeled metrics registry, streaming estimators, exposition.

Traces (:mod:`repro.obs`) are post-hoc; telemetry is *live*.  Attach a
:class:`TelemetryTracer` to any strategy (or a :class:`ShardTelemetry`
over a sharded executor) and every instrumentation site the engine
already has — counters, arrivals, outputs, phases, transitions,
rebalances, faults — publishes into one labeled
:class:`MetricsRegistry`, alongside windowed selectivity estimators,
Page–Hinkley drift detectors, arrival-rate estimators and per-shard
hot-key sketches.  Read it back via Prometheus text exposition, JSONL
snapshots, or the terminal dashboard (``python -m repro.telemetry.dash``).
See docs/TELEMETRY.md.
"""

from typing import TYPE_CHECKING

from repro.telemetry.estimators import (
    ArrivalRateEstimator,
    DecayedRatio,
    Ewma,
    PageHinkley,
    SampledRate,
    SelectivityDriftDetector,
    WindowedRatio,
)
from repro.telemetry.expo import (
    SnapshotLog,
    diff_snapshots,
    load_snapshots,
    registry_snapshot,
    render_prometheus,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
    Windowed,
    canonical_labels,
    series_name,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.telemetry.hub import ShardTelemetry, TelemetryTracer
    from repro.telemetry.sketch import SpaceSavingSketch

# The hub (and the sketch it uses) reach into the shard and engine
# layers, which import repro.plans — whose optimizer imports the leaf
# estimators above.  Loading them lazily keeps that chain acyclic while
# `from repro.telemetry import TelemetryTracer` keeps working.
_LAZY = {
    "ShardTelemetry": ("repro.telemetry.hub", "ShardTelemetry"),
    "TelemetryTracer": ("repro.telemetry.hub", "TelemetryTracer"),
    "SpaceSavingSketch": ("repro.telemetry.sketch", "SpaceSavingSketch"),
}


def __getattr__(name: str):  # PEP 562
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


__all__ = [
    "ArrivalRateEstimator",
    "Counter",
    "DecayedRatio",
    "Ewma",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "PageHinkley",
    "SampledRate",
    "SelectivityDriftDetector",
    "ShardTelemetry",
    "SnapshotLog",
    "SpaceSavingSketch",
    "TelemetryTracer",
    "Windowed",
    "WindowedRatio",
    "canonical_labels",
    "diff_snapshots",
    "load_snapshots",
    "registry_snapshot",
    "render_prometheus",
    "series_name",
]
