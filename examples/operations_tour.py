#!/usr/bin/env python3
"""Operations tour: rate-driven streams, monitoring, and checkpointing.

The production-flavoured workflow around a long-running JISC query:

1. simulate bursty sources with Poisson arrival processes (one stream's
   rate jumps 10x mid-run — the paper's "changes in arrival rates");
2. watch the query with a :class:`QueryMonitor` (state sizes, output
   stalls, incomplete states) and render the plan with live annotations;
3. checkpoint the strategy mid-migration, "crash", restore from the JSON
   blob, and verify the continuation agrees with the uninterrupted run.

Run:  python examples/operations_tour.py
"""

import json

from repro import JISCStrategy, Schema
from repro.engine.checkpoint import checkpoint_strategy, restore_strategy
from repro.engine.monitor import QueryMonitor
from repro.plans.printer import render_tree
from repro.streams.arrivals import PoissonArrivals

STREAMS = ("orders", "payments", "shipments", "alerts")


def main() -> None:
    arrivals = PoissonArrivals(
        {
            "orders": 4.0,
            "payments": 4.0,
            "shipments": 2.0,
            # alerts are rare... until an incident at t=500
            "alerts": [(0.0, 0.5), (500.0, 5.0)],
        },
        n_tuples=12_000,
        key_domain=150,
        seed=13,
    )
    tuples = arrivals.materialize()
    print("simulated rates:", {k: round(v, 2) for k, v in
                               arrivals.observed_rates(tuples).items()})

    schema = Schema.uniform(STREAMS, window=250)
    query = JISCStrategy(schema, STREAMS)
    monitor = QueryMonitor(query)

    # phase 1: run, sample, migrate
    for i, tup in enumerate(tuples[:6_000]):
        query.process(tup)
        monitor.note_tuple()
        if i % 500 == 499:
            monitor.sample()

    print("\nplan before migration:")
    print(render_tree(query.plan.spec, query.plan))
    query.transition(("alerts", "orders", "payments", "shipments"))
    print("\nplan right after migration (incomplete states visible):")
    print(render_tree(query.plan.spec, query.plan))

    for tup in tuples[6_000:6_200]:
        query.process(tup)
        monitor.note_tuple()
    monitor.sample()

    # phase 2: checkpoint mid-migration, crash, restore
    blob = json.dumps(checkpoint_strategy(query))
    print(f"\ncheckpoint captured: {len(blob):,} bytes "
          f"({query.incomplete_state_count()} states still incomplete)")
    restored = restore_strategy(json.loads(blob))

    emitted_before = len(query.outputs)
    for tup in tuples[6_200:]:
        query.process(tup)
        restored.process(tup)
    original_tail = sorted(t.lineage for t in query.outputs[emitted_before:])
    restored_tail = sorted(t.lineage for t in restored.outputs)
    print(f"continuation outputs: original={len(original_tail)} "
          f"restored={len(restored_tail)} identical={original_tail == restored_tail}")

    print("\nmonitor summary:", monitor.summary())
    if original_tail != restored_tail:
        raise SystemExit("restored continuation diverged — this is a bug")


if __name__ == "__main__":
    main()
