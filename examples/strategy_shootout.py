#!/usr/bin/env python3
"""Migration-strategy shootout: JISC vs. the Section 3 baselines.

Runs one forced plan transition over the same workload under every
implemented strategy — JISC, Moving State, Parallel Track, CACQ, STAIRs
and JISC-on-STAIRs — and reports, per strategy:

* total virtual time (deterministic cost-model units);
* output latency caused by the transition (time from the transition
  trigger to the first output produced afterwards — Figure 10's measure);
* output count (all must agree: the correctness contract).

Every run executes with a :class:`repro.obs.tracer.RecordingTracer`
attached, so after the score table the script prints a per-strategy
migration timeline (transition span, lazily-completed values, output
stall gap, promote/demote totals, Parallel Track's old-plan discard) and
exports one JSONL trace per strategy under ``traces/`` — render any of
them later with ``python -m repro.obs.report traces/<name>.jsonl``.

Run:  python examples/strategy_shootout.py [n_joins] [window]
"""

import os
import sys

from repro import (
    CACQExecutor,
    JISCStairsExecutor,
    JISCStrategy,
    MovingStateStrategy,
    ParallelTrackStrategy,
    RecordingTracer,
    STAIRSExecutor,
    StaticPlanExecutor,
)
from repro.obs.report import timeline
from repro.workloads.scenarios import chain_scenario, swap_for_case

STRATEGIES = (
    StaticPlanExecutor,
    JISCStrategy,
    MovingStateStrategy,
    ParallelTrackStrategy,
    CACQExecutor,
    STAIRSExecutor,
    JISCStairsExecutor,
)

TRACE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "traces")


def first_output_latency(strategy, trigger_time: float) -> float:
    """Virtual time from the trigger to the first output at or after it."""
    if hasattr(strategy, "plan"):
        times = strategy.plan.sink.output_times
    elif hasattr(strategy, "output_times"):
        times = strategy.output_times
    else:
        times = strategy._output_times  # ParallelTrack keeps its own merge log
    for when in times:
        if when >= trigger_time:
            return when - trigger_time
    return float("nan")


def describe_timeline(name: str, tracer: RecordingTracer) -> str:
    rows = timeline(tracer.as_trace())
    if not rows:
        return f"{name:>16}: no transition recorded"
    row = rows[0]
    stall = f"{row['stall']:.1f}" if row["stall"] is not None else "n/a"
    parts = [
        f"transition cost {row['transition_cost']:.1f}",
        f"{row['completed_values']} value(s) completed lazily"
        f" (cost {row['completion_cost']:.1f})",
        f"output stall {stall}",
    ]
    if row["promotes"] or row["demotes"]:
        parts.append(f"promotes {row['promotes']}, demotes {row['demotes']}")
    if row["migration_end"] is not None:
        parts.append(
            f"old plan discarded {row['migration_end'] - row['start']:.1f}"
            " after the trigger"
        )
    return f"{name:>16}: " + "; ".join(parts)


def main() -> None:
    n_joins = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    window = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    warmup = 3 * window * (n_joins + 1)
    post = 3 * window * (n_joins + 1)
    domain = window * max(2, n_joins // 3)
    scenario = chain_scenario(n_joins, warmup + post, window, key_domain=domain, seed=1)
    swapped = swap_for_case(scenario.order, "worst")

    print(f"chain query: {n_joins} joins, window {window}, "
          f"{len(scenario.tuples)} tuples, worst-case transition at {warmup}\n")
    header = f"{'strategy':>16} {'virtual time':>14} {'latency':>10} {'outputs':>9}"
    print(header)
    print("-" * len(header))

    os.makedirs(TRACE_DIR, exist_ok=True)
    reference_count = None
    timelines = []
    for cls in STRATEGIES:
        strategy = cls(scenario.schema, scenario.order)
        tracer = RecordingTracer()
        tracer.attach(strategy)
        for tup in scenario.tuples[:warmup]:
            strategy.process(tup)
        trigger = strategy.metrics.clock.now
        strategy.transition(swapped)
        for tup in scenario.tuples[warmup:]:
            strategy.process(tup)
        if tracer.counts_total() != strategy.metrics.counts:
            raise SystemExit(
                f"{strategy.name}: per-phase counters diverged from Metrics!"
            )
        latency = first_output_latency(strategy, trigger)
        n_out = len(strategy.outputs)
        print(f"{strategy.name:>16} {strategy.metrics.clock.now:>14.0f} "
              f"{latency:>10.1f} {n_out:>9d}")
        timelines.append(describe_timeline(strategy.name, tracer))
        tracer.export_jsonl(os.path.join(TRACE_DIR, f"{strategy.name}.jsonl"))
        if reference_count is None:
            reference_count = n_out
        elif n_out != reference_count:
            raise SystemExit(f"{strategy.name} output count diverged!")

    print("\nall strategies produced identical output counts "
          f"({reference_count} results)")

    print("\nmigration timelines (from the recorded traces):")
    for line in timelines:
        print(line)
    print(f"\nJSONL traces written to {TRACE_DIR}/ — inspect one with\n"
          f"  python -m repro.obs.report {os.path.join(TRACE_DIR, 'jisc.jsonl')}")


if __name__ == "__main__":
    main()
