#!/usr/bin/env python3
"""Sensor-network monitoring with an adaptive optimizer in the loop.

The paper's motivating setting (Section 1): long-running continuous queries
over sensor streams whose rates and value distributions drift, so the
initially chosen join order becomes suboptimal mid-flight.

This example correlates four sensor feeds of a building — badge readers,
motion detectors, HVAC controllers and door actuators — on a shared zone
id.  The workload *drifts*: at first the motion stream rarely matches
(most selective, so it belongs at the bottom of the plan); later the badge
stream becomes the selective one.  A :class:`SelectivityOptimizer` watches
the observed match rates and requests plan transitions; JISC carries them
out without halting the output.

Run:  python examples/sensor_network_monitoring.py
"""

import random

from repro import JISCStrategy, Schema, SelectivityOptimizer, StaticPlanExecutor
from repro.streams.tuples import StreamTuple

STREAMS = ("badge", "motion", "hvac", "door")
ZONES = 120


def drifting_workload(n_tuples: int, seed: int = 0):
    """Two phases: 'motion' keys are scattered first, 'badge' keys later.

    Scattering a stream's keys over a larger domain makes probes against it
    miss more often — i.e. makes its join more selective.
    """
    rng = random.Random(seed)
    tuples = []
    for seq in range(n_tuples):
        stream = STREAMS[seq % len(STREAMS)]
        drifted = "motion" if seq < n_tuples // 2 else "badge"
        if stream == drifted:
            zone = rng.randrange(ZONES * 8)  # mostly unmatched zone ids
        else:
            zone = rng.randrange(ZONES)
        tuples.append(StreamTuple(stream, seq, zone))
    return tuples


def main() -> None:
    schema = Schema.uniform(STREAMS, window=150)
    initial = ("hvac", "motion", "door", "badge")
    jisc = JISCStrategy(schema, initial)
    reference = StaticPlanExecutor(schema, initial)
    optimizer = SelectivityOptimizer(tolerance=0.15, min_probes=400)

    tuples = drifting_workload(12_000, seed=42)
    current = initial
    transitions = []

    probes_before = {}
    for i, tup in enumerate(tuples):
        jisc.process(tup)
        reference.process(tup)
        # Feed the optimizer: per-stream probe/match statistics from the
        # scan states (how often a probe against this stream's window hits).
        if i % 500 == 499:
            for name in STREAMS:
                scan_state = jisc.plan.scans[name].state
                # estimated hit rate: fraction of the key domain present
                probes = 1000
                matches = int(probes * min(1.0, scan_state.distinct_count() / ZONES))
                optimizer.observe(name, probes, matches)
            proposal = optimizer.propose(current)
            if proposal is not None:
                transitions.append((i + 1, current, proposal))
                print(f"[tuple {i + 1:6d}] optimizer: {current} -> {proposal}")
                jisc.transition(proposal)
                current = proposal

    same = sorted(jisc.output_lineages()) == sorted(reference.output_lineages())
    print(f"\ntransitions performed: {len(transitions)}")
    print(f"matches emitted: {len(jisc.outputs)} (reference {len(reference.outputs)}, "
          f"identical={same})")
    print(f"incomplete states at end: {jisc.incomplete_state_count()}")
    if not same:
        raise SystemExit("outputs diverged — this is a bug")


if __name__ == "__main__":
    main()
