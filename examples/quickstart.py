#!/usr/bin/env python3
"""Quickstart: run a continuous 3-way join and migrate its plan with JISC.

The program builds the paper's running setup: streams R, S, T joined on a
shared key under count-based sliding windows, executed by a pipelined plan
of symmetric hash joins.  Mid-stream the plan is switched to a different
join order; JISC completes the missing states on demand, and the output is
verified against a never-migrating reference plan.

Run:  python examples/quickstart.py
"""

from repro import (
    JISCStrategy,
    Schema,
    StaticPlanExecutor,
    UniformWorkload,
)


def main() -> None:
    # 1. Declare the streams: name + sliding-window size.
    schema = Schema.uniform(["R", "S", "T"], window=200)

    # 2. A reproducible workload: uniform join keys dealt round-robin
    #    across the three streams (the paper's Section 6 generator).
    tuples = UniformWorkload(
        ["R", "S", "T"], n_tuples=6_000, key_domain=200, seed=7
    ).materialize()

    # 3. Two executors fed the same tuples: JISC (which will migrate) and
    #    the static reference (which never does).
    jisc = JISCStrategy(schema, ("R", "S", "T"))
    reference = StaticPlanExecutor(schema, ("R", "S", "T"))

    for tup in tuples[:3_000]:
        jisc.process(tup)
        reference.process(tup)

    # 4. Migrate: ((R |x| S) |x| T)  ->  ((S |x| T) |x| R).
    #    JISC adopts nothing but the root state here; the new ST state is
    #    incomplete and will be completed value-by-value as probes demand.
    print("migrating plan (R,S,T) -> (S,T,R) ...")
    jisc.transition(("S", "T", "R"))
    print(f"  incomplete states right after transition: "
          f"{jisc.incomplete_state_count()}")
    print(f"  virtual time spent on the transition itself: 0.0 "
          f"(state adoption is a pointer move)")

    for tup in tuples[3_000:]:
        jisc.process(tup)
        reference.process(tup)

    # 5. Verify: same results, in spite of the migration.
    same = sorted(jisc.output_lineages()) == sorted(reference.output_lineages())
    print(f"outputs: jisc={len(jisc.outputs)}  reference={len(reference.outputs)}"
          f"  identical={same}")
    print(f"incomplete states at end of run: {jisc.incomplete_state_count()}")
    print(f"virtual time: jisc={jisc.now():.0f}  reference={reference.now():.0f}")
    if not same:
        raise SystemExit("outputs diverged — this is a bug")


if __name__ == "__main__":
    main()
