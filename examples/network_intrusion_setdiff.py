#!/usr/bin/env python3
"""Set-difference monitoring: unacknowledged alerts (Section 4.7 operators).

A security pipeline watches four streams keyed by connection id:

    alerts - acked - suppressed - resolved

i.e. the continuous set of alert connections that have not been
acknowledged, suppressed, or resolved within the current windows.  The
chain is a left-deep plan of set-difference operators — the binary
operator family Section 4.7 extends JISC to.  Mid-run the plan migrates to
probe the ``resolved`` stream first (it became the most selective filter),
exercising the inner-tuple forward-up rule through incomplete states.

Run:  python examples/network_intrusion_setdiff.py
"""

import random

from repro import Schema, JISCStrategy, StaticPlanExecutor
from repro.operators.setdiff import SetDifference
from repro.streams.tuples import StreamTuple

STREAMS = ("alerts", "acked", "suppressed", "resolved")


def monotone_setdiff(left, right, metrics):
    # Migration-safe suppression semantics (see the operator docstring).
    return SetDifference(left, right, metrics, reappear_on_inner_expiry=False)


def workload(n_tuples: int, seed: int = 0):
    rng = random.Random(seed)
    tuples = []
    for seq in range(n_tuples):
        roll = rng.random()
        if roll < 0.55:
            stream = "alerts"
        elif roll < 0.70:
            stream = "acked"
        elif roll < 0.80:
            stream = "suppressed"
        else:
            stream = "resolved"
        tuples.append(StreamTuple(stream, seq, rng.randrange(400)))
    return tuples


def main() -> None:
    schema = Schema.uniform(STREAMS, window=300)
    initial = ("alerts", "acked", "suppressed", "resolved")
    migrated = ("alerts", "resolved", "acked", "suppressed")

    jisc = JISCStrategy(schema, initial, op_factory=monotone_setdiff)
    reference = StaticPlanExecutor(schema, initial, op_factory=monotone_setdiff)

    tuples = workload(8_000, seed=3)
    for tup in tuples[:4_000]:
        jisc.process(tup)
        reference.process(tup)

    print(f"migrating {initial} -> {migrated} ...")
    jisc.transition(migrated)
    print(f"  incomplete set-difference states: {jisc.incomplete_state_count()}")

    for tup in tuples[4_000:]:
        jisc.process(tup)
        reference.process(tup)

    same = sorted(jisc.output_lineages()) == sorted(reference.output_lineages())
    open_alerts = len(jisc.plan.root.state)
    print(f"unhandled-alert emissions: {len(jisc.outputs)} "
          f"(reference {len(reference.outputs)}, identical={same})")
    print(f"retractions (alerts later handled): {len(jisc.plan.sink.retractions)}")
    print(f"alerts currently open: {open_alerts}")
    if not same:
        raise SystemExit("outputs diverged — this is a bug")


if __name__ == "__main__":
    main()
