#!/usr/bin/env python3
"""The high-level API: ContinuousQuery with the adaptive loop built in.

A payment-fraud correlation: card swipes, geolocation pings, device
logins and risk scores joined on account id, over time-based sliding
windows.  The optimizer watches per-stream match rates harvested from the
joins' probes and re-orders the plan (via JISC) when the observed
selectivities contradict it — no manual transition calls.

Run:  python examples/adaptive_continuous_query.py
"""

import random

from repro import ContinuousQuery, Schema
from repro.streams.schema import StreamDescriptor

STREAMS = ("swipes", "geo", "logins", "risk")


def main() -> None:
    # Time-based windows: each stream retains the last 2000 time units
    # (the arrival sequence doubles as logical time).
    schema = Schema(
        tuple(StreamDescriptor(name, 2000, window_kind="time") for name in STREAMS)
    )
    query = ContinuousQuery(
        schema,
        ("swipes", "geo", "logins", "risk"),
        strategy="jisc",
        reoptimize_every=800,
    )

    rng = random.Random(11)
    alerts = 0
    for i in range(12_000):
        stream = STREAMS[i % len(STREAMS)]
        # 'risk' entries exist for few accounts (selective); 'geo' pings
        # are everywhere (unselective) — the initial order above is wrong.
        if stream == "risk":
            account = rng.randrange(2_000)
        elif stream == "geo":
            account = rng.randrange(60)
        else:
            account = rng.randrange(300)
        for result in query.push(stream, account):
            alerts += 1
            if alerts <= 3:
                parts = ", ".join(f"{p.stream}#{p.seq}" for p in result.parts)
                print(f"ALERT account={result.key}: {parts}")

    print(f"\n{alerts} full correlations emitted")
    print("observed selectivities:",
          {s: round(query.optimizer.selectivity(s) or 0.0, 3) for s in STREAMS})
    print("plan transitions:", [(seq, order) for seq, order in query.transition_log])
    print("final join order:", query.order)


if __name__ == "__main__":
    main()
